"""Tests for exact LP helpers (maximize/implies_bound) and redundant-bound
elimination in generated loop nests."""

from fractions import Fraction

import pytest

from repro.blas import PAPER_PRIORITY, syr2k_program
from repro.core import access_normalize, apply_transformation
from repro.core.transform import parse_assumption
from repro.errors import ParseError
from repro.ir import allocate_arrays, arrays_equal, execute, make_nest, make_program
from repro.linalg import (
    Constraint,
    InfeasibleSystemError,
    Matrix,
    implies_bound,
    maximize,
)


def box(width, height):
    """0 <= x <= width, 0 <= y <= height."""
    return [
        Constraint.make([1, 0], 0),
        Constraint.make([-1, 0], width),
        Constraint.make([0, 1], 0),
        Constraint.make([0, -1], height),
    ]


class TestMaximize:
    def test_linear_objective_on_box(self):
        assert maximize(box(5, 7), [1, 0]) == 5
        assert maximize(box(5, 7), [0, 1]) == 7
        assert maximize(box(5, 7), [1, 1]) == 12
        assert maximize(box(5, 7), [-1, 0]) == 0
        assert maximize(box(5, 7), [2, 3], 1) == 32

    def test_fractional_vertex(self):
        # x + 2y <= 3, x >= 0, y >= 0, x = y: max x+y at x=y=1.
        constraints = [
            Constraint.make([-1, -2], 3),
            Constraint.make([1, 0], 0),
            Constraint.make([0, 1], 0),
            Constraint.make([1, -1], 0),
            Constraint.make([-1, 1], 0),
        ]
        assert maximize(constraints, [1, 1]) == 2

    def test_unbounded(self):
        constraints = [Constraint.make([1, 0], 0)]  # x >= 0 only
        assert maximize(constraints, [1, 0]) is None

    def test_infeasible(self):
        constraints = [
            Constraint.make([1], 0),
            Constraint.make([-1], -1),
        ]
        with pytest.raises(InfeasibleSystemError):
            maximize(constraints, [1])


class TestImpliesBound:
    def test_domination(self):
        region = box(5, 7)
        # y <= x + 10 everywhere? dominating = x+10, dominated... check
        # "x <= x+2 everywhere": rows are (coeffs..., const).
        assert implies_bound(region, [1, 0, 2], [1, 0, 0])
        assert not implies_bound(region, [1, 0, 0], [1, 0, 2])
        # min(5, width) style: "5 <= 12" everywhere.
        assert implies_bound(region, [0, 0, 12], [0, 0, 5])

    def test_empty_region_implies_anything(self):
        region = [Constraint.make([1], 0), Constraint.make([-1], -1)]
        assert implies_bound(region, [0, -100], [0, 100])


class TestAssumptionParsing:
    def test_ge_and_le(self):
        c1 = parse_assumption("N >= 2*b", ["u"], ["N", "b"])
        assert c1.coeffs == (0, 1, -2)
        c2 = parse_assumption("b <= N", ["u"], ["N", "b"])
        assert c2.coeffs == (0, 1, -1)

    def test_rejects_loop_indices(self):
        with pytest.raises(ParseError):
            parse_assumption("u >= 1", ["u"], ["N"])

    def test_rejects_other_operators(self):
        with pytest.raises(ParseError):
            parse_assumption("N == 4", ["u"], ["N"])


class TestBoundSimplification:
    def syr2k_matrix(self):
        return Matrix([[-1, 1, 0], [0, -1, 1], [0, 0, 1]])

    def test_constant_bounds_pruned(self):
        nest = make_nest(
            loops=[("i", 0, 9), ("j", ["i-20", "0"], ["i+20", "9"])],
            body=["A[i, j] = 1"],
        )
        result = apply_transformation(nest, Matrix.identity(2))
        inner = result.nest.loops[1]
        # i-20 <= 0 and 9 <= i+20 on the region: both redundant terms gone.
        assert len(inner.lower) == 1
        assert len(inner.upper) == 1

    def test_syr2k_bounds_collapse_with_assumptions(self):
        program = syr2k_program(400, 48)
        plain = apply_transformation(
            program.nest, self.syr2k_matrix(), simplify=False
        )
        simplified = apply_transformation(
            program.nest,
            self.syr2k_matrix(),
            assumptions=["N >= 2*b", "b >= 2"],
        )
        # Unsimplified: four max() terms on the outer lower bound;
        # with assumptions the paper's clean "for u = 0, 2b-2" emerges.
        assert len(plain.nest.loops[0].lower) > 1
        assert len(simplified.nest.loops[0].lower) == 1
        assert len(simplified.nest.loops[0].upper) == 1
        assert str(simplified.nest.loops[0]) == "for u = 0, 2*b-2"
        assert str(simplified.nest.loops[1]) == "for v = -b+1, b-u-1"

    def test_simplification_preserves_iteration_set(self):
        program = syr2k_program(24, 5)
        params = {"N": 24, "b": 5, "alpha": 1}
        plain = apply_transformation(
            program.nest, self.syr2k_matrix(), simplify=False
        )
        simplified = apply_transformation(
            program.nest,
            self.syr2k_matrix(),
            assumptions=["N >= 2*b", "b >= 2"],
        )
        points_plain = [
            tuple(env[name] for name in plain.new_indices)
            for env in plain.nest.iterate(params)
        ]
        points_simplified = [
            tuple(env[name] for name in simplified.new_indices)
            for env in simplified.nest.iterate(params)
        ]
        assert points_plain == points_simplified

    def test_simplified_semantics(self):
        program = syr2k_program(16, 4)
        result = access_normalize(
            program,
            priority=PAPER_PRIORITY,
            assumptions=["N >= 2*b", "b >= 2"],
        )
        base = allocate_arrays(program, seed=70)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        assert arrays_equal(base, other)

    def test_wrong_assumption_is_callers_risk_but_parses(self):
        # Assumptions are trusted facts; a bound pruned under "N >= 2*b"
        # simply must not be relied on when N < 2b.  Here we just check the
        # plumbing accepts them through the driver.
        program = syr2k_program(400, 48)
        result = access_normalize(
            program, priority=PAPER_PRIORITY, assumptions=["N >= 2*b"]
        )
        assert result.transformed.nest.depth == 3

    def test_simplify_off_keeps_everything(self):
        program = syr2k_program(400, 48)
        result = apply_transformation(
            program.nest, self.syr2k_matrix(), simplify=False
        )
        assert len(result.nest.loops[0].upper) == 4
