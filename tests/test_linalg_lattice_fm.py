"""Tests for integer lattices and Fourier-Motzkin elimination."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NotInvertibleError, ShapeError
from repro.linalg import (
    Constraint,
    InfeasibleSystemError,
    IntegerLattice,
    Matrix,
    eliminate,
    first_aligned_at_least,
    last_aligned_at_most,
)


def invertible_2x2():
    entry = st.integers(-4, 4)
    return st.tuples(entry, entry, entry, entry).map(
        lambda t: Matrix([[t[0], t[1]], [t[2], t[3]]])
    ).filter(lambda m: m.det() != 0)


class TestIntegerLattice:
    def test_requires_square_integer_invertible(self):
        with pytest.raises(ShapeError):
            IntegerLattice(Matrix([[1, 2]]))
        with pytest.raises(NotInvertibleError):
            IntegerLattice(Matrix([[1, 2], [2, 4]]))
        with pytest.raises(ValueError):
            IntegerLattice(Matrix([[Fraction(1, 2)]]))

    def test_paper_scaling_lattice(self):
        # T = [[2,4],[1,5]]: image points (u, v) = (2i+4j, i+5j).
        lattice = IntegerLattice(Matrix([[2, 4], [1, 5]]))
        assert lattice.determinant == 6
        for i in range(-3, 4):
            for j in range(-3, 4):
                point = [2 * i + 4 * j, i + 5 * j]
                assert lattice.contains(point)
        assert not lattice.contains([1, 0])
        # Outermost stride is 2: u = 2i+4j is always even.
        assert lattice.stride(0) == 2

    def test_level_offset_matches_membership(self):
        lattice = IntegerLattice(Matrix([[2, 4], [1, 5]]))
        # For u = 6 (i.e. some lattice-consistent outer value), the inner
        # loop takes values congruent to offset mod stride(1).
        stride = lattice.stride(1)
        offset = lattice.level_offset([6], 1)
        members = {
            (2 * i + 4 * j, i + 5 * j)
            for i in range(-10, 11)
            for j in range(-10, 11)
        }
        inner_values = sorted(v for (u, v) in members if u == 6)
        assert inner_values
        for value in inner_values:
            assert value % stride == offset % stride

    def test_level_offset_rejects_bad_prefix(self):
        lattice = IntegerLattice(Matrix([[2, 0], [0, 1]]))
        with pytest.raises(ValueError):
            lattice.level_offset([1], 1)  # 1 is not a multiple of 2

    @given(invertible_2x2())
    @settings(max_examples=60, deadline=None)
    def test_membership_property(self, t):
        lattice = IntegerLattice(t)
        for i in range(-2, 3):
            for j in range(-2, 3):
                point = [int(v) for v in t.apply([i, j])]
                assert lattice.contains(point)

    @given(invertible_2x2())
    @settings(max_examples=40, deadline=None)
    def test_determinant_counts_cosets(self, t):
        # |det| = index of the lattice in Z^2: in any det x det box the
        # lattice hits exactly det points per det^2 cells on average.
        lattice = IntegerLattice(t)
        d = lattice.determinant
        span = 3 * d
        count = sum(
            1
            for x in range(span)
            for y in range(span)
            if lattice.contains([x, y])
        )
        assert count * d == span * span


class TestAlignment:
    def test_first_aligned(self):
        assert first_aligned_at_least(5, 0, 3) == 6
        assert first_aligned_at_least(6, 0, 3) == 6
        assert first_aligned_at_least(Fraction(11, 2), 1, 4) == 9
        assert first_aligned_at_least(-7, 2, 5) == -3

    def test_last_aligned(self):
        assert last_aligned_at_most(5, 0, 3) == 3
        assert last_aligned_at_most(6, 0, 3) == 6
        assert last_aligned_at_most(Fraction(11, 2), 1, 4) == 5
        assert last_aligned_at_most(-7, 2, 5) == -8

    def test_bad_stride(self):
        with pytest.raises(ValueError):
            first_aligned_at_least(0, 0, 0)
        with pytest.raises(ValueError):
            last_aligned_at_most(0, 0, -1)


def triangle_constraints():
    # 0 <= j <= i <= n with n a parameter: variables (i, j), parameter n.
    return [
        Constraint.make([1, 0, 0], 0),        # i >= 0
        Constraint.make([-1, 0, 1], 0),       # n - i >= 0
        Constraint.make([0, 1, 0], 0),        # j >= 0
        Constraint.make([1, -1, 0], 0),       # i - j >= 0
    ]


class TestFourierMotzkin:
    def test_triangle(self):
        levels = eliminate(triangle_constraints(), num_vars=2)
        n = 4
        # Outermost: 0 <= i <= n.
        low = levels[0].lower_value([0, 0, n])
        high = levels[0].upper_value([0, 0, n])
        assert (low, high) == (0, n)
        # Inner: 0 <= j <= i.
        for i in range(n + 1):
            assert levels[1].lower_value([i, 0, n]) == 0
            assert levels[1].upper_value([i, 0, n]) == i

    def test_enumeration_matches_bruteforce(self):
        constraints = [
            Constraint.make([1, 0, 0], -1),       # i >= 1
            Constraint.make([-1, 0, 0], 7),       # i <= 7
            Constraint.make([-2, 1, 0], 3),       # j >= 2i - 3
            Constraint.make([1, -1, 0], 4),       # j <= i + 4
        ]
        levels = eliminate(constraints, num_vars=2)
        expected = {
            (i, j)
            for i in range(-10, 20)
            for j in range(-20, 30)
            if 1 <= i <= 7 and 2 * i - 3 <= j <= i + 4
        }
        got = set()
        lo0 = levels[0].lower_value([0, 0, 0])
        hi0 = levels[0].upper_value([0, 0, 0])
        i = -(-lo0.numerator // lo0.denominator)
        while i <= hi0:
            lo1 = levels[1].lower_value([i, 0, 0])
            hi1 = levels[1].upper_value([i, 0, 0])
            j = -(-lo1.numerator // lo1.denominator)
            while j <= hi1:
                got.add((i, j))
                j += 1
            i += 1
        assert got == expected

    def test_infeasible_detected(self):
        constraints = [
            Constraint.make([1], 0),    # x >= 0
            Constraint.make([-1], -1),  # x <= -1
        ]
        with pytest.raises(InfeasibleSystemError):
            eliminate(constraints, num_vars=1)

    def test_trivial_and_duplicate_constraints_pruned(self):
        constraints = triangle_constraints() + [
            Constraint.make([0, 0, 0], 5),  # trivially true
            Constraint.make([2, 0, 0], 0),  # duplicate of i >= 0 (scaled)
        ]
        levels = eliminate(constraints, num_vars=2)
        assert len(levels) == 2

    def test_normalized_scaling(self):
        c = Constraint.make([2, 4], 6).normalized()
        assert c.coeffs == (1, 2)
        assert c.const == 3

    def test_missing_bound_raises(self):
        constraints = [Constraint.make([1, 0], 0)]  # only i >= 0
        levels = eliminate(constraints, num_vars=2)
        with pytest.raises(InfeasibleSystemError):
            levels[0].upper_value([0, 0])
