"""All accounting tiers must be bit-identical on every count.

Parametrized over every sample program under ``examples/programs/`` and
every regression-corpus entry under ``tests/corpus/`` at P in {1, 2, 3, 4}:
whatever tier ``auto`` picks, and any forced tier that accepts the nest,
must reproduce the interpreter walk (tier 3) exactly — per processor, on
every :class:`~repro.numa.AccessCounts` field.  A forced tier is allowed
to *reject* a nest (that is what ``auto`` falls back for) but never to
disagree.
"""

import glob
import json
import os

import pytest

from repro.codegen import generate_spmd
from repro.core import access_normalize
from repro.errors import SimulationError
from repro.fuzz import ProgramSpec
from repro.lang import parse_program
from repro.numa import simulate

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = sorted(glob.glob(os.path.join(REPO_ROOT, "examples", "programs", "*.an")))
CORPUS = sorted(
    glob.glob(os.path.join(os.path.dirname(__file__), "corpus", "*.json"))
)

PROCS = (1, 2, 3, 4)

#: Small parameter overrides keeping the tier-3 walk fast in CI.
EXAMPLE_PARAMS = {
    "gemm": {"N": 24},
    "syr2k": {"N": 40, "b": 6},
    "figure1": {"N1": 16, "N2": 12, "b": 4},
}


def _assert_tiers_match(node, processors, params=None):
    walk = simulate(
        node, processors=processors, params=params, engine="walk"
    )
    assert walk.engine == "walk"
    for engine in ("auto", "symbolic", "closed-form", "compiled"):
        try:
            outcome = simulate(
                node, processors=processors, params=params, engine=engine
            )
        except SimulationError as error:
            # auto must accept every nest; a forced tier may decline.
            assert engine != "auto", error
            continue
        for reference, tiered in zip(walk.per_proc, outcome.per_proc):
            assert tiered.counts == reference.counts, (
                f"engine {outcome.engine!r} disagrees with walk on "
                f"proc {reference.proc} at P={processors}"
            )


def _load_example(path):
    with open(path, "r", encoding="utf-8") as handle:
        return parse_program(handle.read(), name=os.path.basename(path))


@pytest.mark.parametrize(
    "path", EXAMPLES,
    ids=[os.path.splitext(os.path.basename(p))[0] for p in EXAMPLES],
)
@pytest.mark.parametrize("processors", PROCS)
def test_example_programs_tier_equivalence(path, processors):
    assert EXAMPLES, "no example programs found"
    program = _load_example(path)
    params = EXAMPLE_PARAMS.get(program.name)
    normalized = access_normalize(program).transformed
    variants = (
        generate_spmd(program, block_transfers=False),
        generate_spmd(normalized, block_transfers=False),
        generate_spmd(normalized, block_transfers=True),
    )
    for node in variants:
        _assert_tiers_match(node, processors, params=params)


@pytest.mark.parametrize(
    "path", CORPUS,
    ids=[os.path.splitext(os.path.basename(p))[0] for p in CORPUS],
)
@pytest.mark.parametrize("processors", PROCS)
@pytest.mark.parametrize("schedule", ("wrapped", "blocked"))
def test_corpus_tier_equivalence(path, processors, schedule):
    assert CORPUS, "no corpus entries found"
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    spec = ProgramSpec.from_dict(data.get("spec", data))
    result = access_normalize(spec.build())
    node = generate_spmd(
        result.transformed,
        schedule=schedule,
        sync_events=result.outer_carried_count,
    )
    _assert_tiers_match(node, processors)


def test_paper_kernels_are_tier1_end_to_end():
    """Acceptance criterion: ``auto`` answers the Figure 4 GEMM sweep
    AND the Figure 5 SYR2K sweep from the symbolic per-program forms.
    SYR2K's banded nests used to be demoted to closed form (their
    multi-armed bounds made naive form evaluation slower than
    re-derivation); residue-class specialized evaluators made the
    forms cheap enough that auto's cost model now promotes them.  No
    paper kernel ever falls back to the walk."""
    from repro.bench import gemm_variants, syr2k_variants

    for name, node in gemm_variants(16).items():
        outcome = simulate(node, processors=4)
        assert outcome.engine == "symbolic", (name, outcome.engine)
    for name, node in syr2k_variants(24, 4).items():
        outcome = simulate(node, processors=4)
        assert outcome.engine == "symbolic", (name, outcome.engine)
