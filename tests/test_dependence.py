"""Tests for dependence analysis: distances, kinds, matrices, filters."""

import pytest

from repro.dependence import (
    Dependence,
    DependenceKind,
    analyze_dependences,
    dependence_matrix,
    has_non_uniform,
    is_lex_positive,
    lex_sign,
    normalize_lex_positive,
    subscript_matrix,
)
from repro.errors import DependenceError
from repro.ir import make_nest
from repro.linalg import Matrix


class TestLexOrder:
    def test_lex_sign(self):
        assert lex_sign([0, 0, 1]) == 1
        assert lex_sign([0, -2, 1]) == -1
        assert lex_sign([0, 0, 0]) == 0

    def test_is_lex_positive(self):
        assert is_lex_positive([1, -5])
        assert not is_lex_positive([0, -1])
        assert not is_lex_positive([0, 0])

    def test_normalize(self):
        assert normalize_lex_positive([0, -1, 2]) == (0, 1, -2)
        assert normalize_lex_positive([2, 0]) == (2, 0)
        assert normalize_lex_positive([0, 0]) is None


class TestDependenceObject:
    def test_requires_exactly_one_representation(self):
        with pytest.raises(DependenceError):
            Dependence(array="A", kind=DependenceKind.FLOW)
        with pytest.raises(DependenceError):
            Dependence(
                array="A",
                kind=DependenceKind.FLOW,
                distance=(1,),
                direction=("*",),
            )

    def test_rejects_lex_negative_distance(self):
        with pytest.raises(DependenceError):
            Dependence(array="A", kind=DependenceKind.FLOW, distance=(0, -1))

    def test_str(self):
        dep = Dependence(array="C", kind=DependenceKind.FLOW, distance=(0, 0, 1))
        assert "flow" in str(dep)
        assert "C" in str(dep)


class TestSubscriptMatrix:
    def test_figure1(self):
        nest = make_nest(
            loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
            body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
        )
        refs = nest.array_refs()
        b_matrix = subscript_matrix(refs[0][0], ["i", "j", "k"])
        assert b_matrix == Matrix([[1, 0, 0], [-1, 1, 0]])
        a_matrix = subscript_matrix(refs[2][0], ["i", "j", "k"])
        assert a_matrix == Matrix([[1, 0, 0], [0, 1, 1]])


class TestGEMMDependences:
    def make(self):
        return make_nest(
            loops=[("i", 1, "N"), ("j", 1, "N"), ("k", 1, "N")],
            body=["C[i, j] = C[i, j] + A[i, k] * B[k, j]"],
        )

    def test_gemm_dependence_is_k_carried(self):
        deps = analyze_dependences(self.make())
        distances = {dep.distance for dep in deps if dep.distance}
        # The paper: dependence matrix of GEMM is (0, 0, 1)^T.
        assert distances == {(0, 0, 1)}
        assert not has_non_uniform(deps)

    def test_gemm_kinds(self):
        deps = analyze_dependences(self.make())
        kinds = {dep.kind for dep in deps}
        # C is read and written at the same subscripts: flow, anti and
        # output dependences all with distance (0,0,1).
        assert kinds == {DependenceKind.FLOW, DependenceKind.ANTI, DependenceKind.OUTPUT}

    def test_gemm_dependence_matrix(self):
        deps = analyze_dependences(self.make())
        matrix = dependence_matrix(deps, 3)
        assert matrix == Matrix([[0], [0], [1]])


class TestSYR2KDependences:
    def test_syr2k_dependence(self):
        nest = make_nest(
            loops=[
                ("i", 1, "N"),
                ("j", "i", "min(i+2b-2, N)"),
                ("k", "max(i-b+1, j-b+1, 1)", "min(i+b-1, j+b-1, N)"),
            ],
            body=[
                "Cb[i, j-i+1] = Cb[i, j-i+1]"
                " + alpha*Ab[k, i-k+b]*Bb[k, j-k+b]"
                " + alpha*Ab[k, j-k+b]*Bb[k, i-k+b]"
            ],
        )
        deps = analyze_dependences(nest)
        matrix = dependence_matrix(deps, 3)
        # The paper: dependence matrix is (0, 0, 1)^T.
        assert matrix == Matrix([[0], [0], [1]])


class TestUniformSolver:
    def test_constant_offset_flow(self):
        # A[i] written, A[i-1] read: flow dependence with distance 1.
        nest = make_nest(loops=[("i", 1, 9)], body=["A[i] = A[i-1] + 1"])
        deps = analyze_dependences(nest)
        flows = [d for d in deps if d.kind == DependenceKind.FLOW]
        assert any(d.distance == (1,) for d in flows)

    def test_anti_direction_offset(self):
        # A[i] written, A[i+1] read: the reader of iteration i conflicts
        # with the writer of iteration i+1 -> anti dependence distance 1.
        nest = make_nest(loops=[("i", 1, 9)], body=["A[i] = A[i+1] + 1"])
        deps = analyze_dependences(nest)
        assert any(d.kind == DependenceKind.ANTI and d.distance == (1,) for d in deps)

    def test_no_dependence_parity(self):
        # A[2i] vs A[2i+1]: even and odd elements never collide.
        nest = make_nest(loops=[("i", 0, 9)], body=["A[2i] = A[2i+1] + 1"])
        deps = analyze_dependences(nest)
        assert deps == []

    def test_same_iteration_only_no_columns(self):
        # A[i] = A[i] + 1 in a 1-deep nest: same-iteration dependence only.
        nest = make_nest(loops=[("i", 0, 9)], body=["A[i] = A[i] + 1"])
        deps = analyze_dependences(nest)
        assert all(dep.distance != (0,) for dep in deps)
        assert dependence_matrix(deps, 1).ncols == 0

    def test_skewed_uniform(self):
        nest = make_nest(
            loops=[("i", 1, 9), ("j", 1, 9)],
            body=["A[i+j] = A[i+j-1] + 1"],
        )
        deps = analyze_dependences(nest)
        distances = {dep.distance for dep in deps if dep.distance}
        # F = [1 1]; particular solution plus 1-D null lattice -> the
        # conservative mixed path produces a direction vector instead.
        assert distances == set() or all(len(d) == 2 for d in distances)
        assert deps  # there IS a dependence


class TestNonUniform:
    def test_transpose_pair_is_non_uniform(self):
        nest = make_nest(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["A[i, j] = A[j, i] + 1"],
        )
        deps = analyze_dependences(nest)
        assert has_non_uniform(deps)

    def test_gcd_filter_kills_parity_nonuniform(self):
        # 2i vs 4i+1: even versus odd addresses, and the pair is
        # non-uniform (different linear parts), so the GCD test fires:
        # gcd(2, -4) = 2 does not divide 1.
        nest = make_nest(
            loops=[("i", 0, 9)],
            body=["A[2i] = A[4i + 1] + 1"],
        )
        deps = analyze_dependences(nest)
        assert deps == []

    def test_banerjee_filter_with_params(self):
        # A[2i] writes 0..8; A[i+12] reads 12..16: ranges disjoint, so
        # with concrete bounds Banerjee proves independence.
        nest = make_nest(
            loops=[("i", 0, 4)],
            body=["A[2i] = A[i + 12] + 1"],
        )
        assert analyze_dependences(nest, params={}) == []
        # Without bounds information the conservative answer keeps it.
        assert analyze_dependences(nest) != []

    def test_dependence_matrix_rejects_non_uniform(self):
        dep = Dependence(array="A", kind=DependenceKind.FLOW, direction=("*",))
        with pytest.raises(DependenceError):
            dependence_matrix([dep], 1)

    def test_dependence_matrix_depth_mismatch(self):
        dep = Dependence(array="A", kind=DependenceKind.FLOW, distance=(1,))
        with pytest.raises(DependenceError):
            dependence_matrix([dep], 2)


class TestReadOnlyPairs:
    def test_reads_produce_no_dependences(self):
        nest = make_nest(
            loops=[("i", 0, 9)],
            body=["B[i] = A[i] + A[i-1]"],
        )
        deps = analyze_dependences(nest)
        assert all(dep.array != "A" for dep in deps)
