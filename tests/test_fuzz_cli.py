"""End-to-end tests for the ``repro fuzz`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.fuzz.oracle import FuzzRecord
import repro.fuzz.cli as fuzz_cli


def _run_fuzz(capsys, tmp_path, *extra):
    code = main([
        "fuzz", "--count", "8", "--seed", "3",
        "--corpus-dir", str(tmp_path / "corpus"), *extra,
    ])
    captured = capsys.readouterr()
    return code, json.loads(captured.out)


def test_fuzz_summary_shape(capsys, tmp_path):
    code, summary = _run_fuzz(capsys, tmp_path)
    assert code == 0
    assert summary["tool"] == "repro-fuzz"
    assert summary["seed"] == 3
    assert summary["cases"] == 8
    assert summary["ok"] is True
    assert summary["status"] == {"ok": 8}
    assert summary["failures"] == []
    assert summary["checks"] > 0


def test_fuzz_summary_independent_of_jobs(capsys, tmp_path):
    _, serial = _run_fuzz(capsys, tmp_path, "--jobs", "1")
    _, parallel = _run_fuzz(capsys, tmp_path, "--jobs", "2")
    assert serial == parallel


def test_fuzz_time_budget_runs_at_least_one_batch(capsys, tmp_path):
    code = main([
        "fuzz", "--count", "0", "--seed", "5", "--time-budget", "0.01",
        "--corpus-dir", str(tmp_path / "corpus"),
    ])
    summary = json.loads(capsys.readouterr().out)
    assert code == 0
    assert summary["cases"] > 0


def test_fuzz_failure_writes_pending_artifacts(capsys, tmp_path, monkeypatch):
    """A failing case must exit nonzero and leave a corpus entry + pytest
    repro under <corpus-dir>/pending/."""
    real_task = fuzz_cli.fuzz_task

    def sabotaged(item):
        record = real_task(item)
        index, _ = item
        if index != 0:
            return record
        from repro.fuzz import generate_spec

        return FuzzRecord(
            index=record.index, seed=record.seed, status="mismatch",
            stage="normalize", detail="synthetic failure for testing",
            checks=record.checks, spec=generate_spec(record.seed).to_dict(),
        )

    monkeypatch.setattr(fuzz_cli, "fuzz_task", sabotaged)
    corpus = tmp_path / "corpus"
    code = main([
        "fuzz", "--count", "2", "--seed", "0", "--corpus-dir", str(corpus),
    ])
    summary = json.loads(capsys.readouterr().out)
    assert code == 1
    assert summary["ok"] is False
    assert summary["status"]["mismatch"] == 1
    (failure,) = summary["failures"]
    assert failure["status"] == "mismatch"
    pending = corpus / "pending"
    assert list(pending.glob("*.json")), "no pending corpus entry written"
    assert list(pending.glob("test_repro_*.py")), "no pytest repro written"


def test_fuzz_rejects_non_integer_jobs(tmp_path):
    with pytest.raises(SystemExit):
        main(["fuzz", "--jobs", "x", "--corpus-dir", str(tmp_path)])
