"""Tests for the CLI driver and the automatic-distribution search."""

import pytest

from repro.cli import main
from repro.core.autodist import (
    candidate_assignments,
    evaluate_assignment,
    search_distributions,
)
from repro.blas import gemm_program
from repro.distributions import Wrapped
from repro.numa import butterfly_gp1000


@pytest.fixture
def gemm_file(tmp_path):
    path = tmp_path / "gemm.an"
    path.write_text(
        """
program gemm
param N = 8
real C(N, N) distribute (*, wrapped)
real A(N, N) distribute (*, wrapped)
real B(N, N) distribute (*, wrapped)

for i = 0, N-1
    for j = 0, N-1
        for k = 0, N-1
            C[i, j] = C[i, j] + A[i, k] * B[k, j]
"""
    )
    return str(path)


class TestCLICompile:
    def test_compile_all(self, gemm_file, capsys):
        assert main(["compile", gemm_file]) == 0
        out = capsys.readouterr().out
        assert "access normalization report" in out
        assert "SPMD node program" in out
        assert "generated Python" in out
        assert "C[w, u] = C[w, u] + A[w, v] * B[v, u]" in out

    def test_compile_report_only(self, gemm_file, capsys):
        assert main(["compile", gemm_file, "--emit", "report"]) == 0
        out = capsys.readouterr().out
        assert "transformation T" in out
        assert "SPMD node program" not in out

    def test_compile_no_block_transfers(self, gemm_file, capsys):
        assert main(["compile", gemm_file, "--no-block-transfers",
                     "--emit", "node"]) == 0
        out = capsys.readouterr().out
        assert "read A[*, v]" not in out

    def test_compile_with_priority(self, gemm_file, capsys):
        assert main(["compile", gemm_file, "--emit", "report",
                     "--priority", "i,k,j"]) == 0
        out = capsys.readouterr().out
        assert "transformation T" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent/prog.an"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_exit_code(self, tmp_path, capsys):
        bad = tmp_path / "bad.an"
        bad.write_text("for i = broken\n")
        assert main(["compile", str(bad)]) == 1
        assert "error" in capsys.readouterr().err


class TestCLISimulate:
    def test_simulate_table(self, gemm_file, capsys):
        assert main(["simulate", gemm_file, "-P", "1,2,4"]) == 0
        out = capsys.readouterr().out
        assert "naive" in out
        assert "normalized+bt" in out
        assert "BBN Butterfly" in out

    def test_simulate_with_ownership(self, gemm_file, capsys):
        assert main(["simulate", gemm_file, "-P", "1,2", "--ownership"]) == 0
        assert "ownership" in capsys.readouterr().out

    def test_simulate_other_machine(self, gemm_file, capsys):
        assert main(
            ["simulate", gemm_file, "-P", "1,2", "--machine", "ipsc860"]
        ) == 0
        assert "iPSC" in capsys.readouterr().out

    def test_contention_override(self, gemm_file, capsys):
        assert main(
            ["simulate", gemm_file, "-P", "1,4", "--contention", "0.3"]
        ) == 0


class TestCLIAutodist:
    def test_autodist_runs(self, gemm_file, capsys):
        assert main(
            ["autodist", gemm_file, "--single-p", "4", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "best:" in out
        assert "candidates evaluated" in out


class TestAutodistSearch:
    def test_candidate_enumeration(self):
        program = gemm_program(8)
        candidates = list(candidate_assignments(program))
        # Three 2-D arrays, each with 4 options (wrapped/blocked x 2 dims).
        assert len(candidates) == 4 ** 3
        with_replicated = list(
            candidate_assignments(program, allow_replicated=True)
        )
        assert len(with_replicated) == 5 ** 3

    def test_evaluate_assignment(self):
        program = gemm_program(8)
        candidate = evaluate_assignment(
            program,
            {"A": Wrapped(1), "B": Wrapped(1), "C": Wrapped(1)},
            processors=4,
            machine=butterfly_gp1000(),
        )
        assert candidate.time_us > 0
        assert "wrapped column" in candidate.describe()

    def test_search_ranks_paper_distribution_at_top(self):
        # The paper's all-wrapped-column choice must tie the best candidate
        # (its row-wise mirror image has identical cost by symmetry).
        program = gemm_program(12)
        outcome = search_distributions(
            program, processors=4, machine=butterfly_gp1000()
        )
        best_time = outcome.best.time_us
        column_candidates = [
            c
            for c in outcome.ranking
            if all(
                isinstance(d, Wrapped) and d.dim == 1
                for d in c.distributions.values()
            )
        ]
        assert column_candidates
        assert column_candidates[0].time_us == pytest.approx(best_time, rel=1e-9)

    def test_search_max_candidates(self):
        program = gemm_program(8)
        outcome = search_distributions(
            program, processors=2, max_candidates=5
        )
        assert outcome.evaluated == 5

    def test_wrapped_beats_all_blocked_for_gemm(self):
        # Blocked columns misalign with the wrapped outer schedule, so the
        # all-wrapped assignments must come out ahead.
        from repro.distributions import Blocked

        program = gemm_program(12)
        machine = butterfly_gp1000()
        wrapped = evaluate_assignment(
            program,
            {"A": Wrapped(1), "B": Wrapped(1), "C": Wrapped(1)},
            processors=4,
            machine=machine,
        )
        blocked = evaluate_assignment(
            program,
            {"A": Blocked(1), "B": Blocked(1), "C": Blocked(1)},
            processors=4,
            machine=machine,
        )
        assert wrapped.time_us <= blocked.time_us
