"""Tests for the parallel sweep engine: executor, cache, metrics."""

import pytest

from repro.bench.figures import (
    fig4_series_simulated,
    fig5_series,
    figure_machine,
    gemm_variants,
)
from repro.bench.harness import run_speedup_sweep
from repro.core.autodist import search_distributions
from repro.blas import gemm_program
from repro.errors import ReproError, SimulationError
from repro.numa.machine import butterfly_gp1000, ipsc860
from repro.numa.simulator import simulate, simulate_task
from repro.runtime import (
    Metrics,
    SimulationCache,
    SweepCell,
    cell_key,
    node_fingerprint,
    resolve_jobs,
    run_grid,
)
from repro.runtime import executor as executor_module


@pytest.fixture
def gemm_node():
    return gemm_variants(8)["gemmB"]


class TestMetrics:
    def test_counters_and_timers(self):
        metrics = Metrics()
        metrics.count("hits")
        metrics.count("hits", 2)
        metrics.add_time("simulate", 0.25)
        assert metrics.counter("hits") == 3
        assert metrics.counter("absent") == 0
        assert metrics.timers["simulate"] == pytest.approx(0.25)

    def test_stage_context_manager(self):
        metrics = Metrics()
        with metrics.stage("parse"):
            pass
        assert metrics.timers["parse"] >= 0.0

    def test_merge(self):
        a, b = Metrics(), Metrics()
        a.count("cells", 2)
        b.count("cells", 3)
        b.add_time("simulate", 1.0)
        a.merge(b)
        assert a.counter("cells") == 5
        assert a.timers["simulate"] == pytest.approx(1.0)

    def test_report_lists_stages_and_counters(self):
        metrics = Metrics()
        metrics.add_time("simulate", 0.5)
        metrics.count("cache_hits", 7)
        text = metrics.report()
        assert "simulate" in text
        assert "cache_hits" in text

    def test_empty_report(self):
        assert "no events" in Metrics().report()


class TestFingerprints:
    def test_fingerprint_stable_across_rebuilds(self):
        a = gemm_variants(8)["gemmB"]
        b = gemm_variants(8)["gemmB"]
        assert a is not b
        assert node_fingerprint(a) == node_fingerprint(b)

    def test_fingerprint_distinguishes_variants(self):
        nodes = gemm_variants(8)
        prints = {node_fingerprint(n) for n in nodes.values()}
        assert len(prints) == len(nodes)

    def test_cell_key_covers_every_input(self, gemm_node):
        machine = butterfly_gp1000()
        base = cell_key(gemm_node, 4, None, machine)
        assert cell_key(gemm_node, 8, None, machine) != base
        assert cell_key(gemm_node, 4, {"N": 16}, machine) != base
        assert cell_key(gemm_node, 4, None, ipsc860()) != base
        assert cell_key(gemm_node, 4, None, machine, mode="execute") != base
        assert cell_key(gemm_node, 4, None, machine, block_cache=True) != base
        assert cell_key(gemm_node, 4, None, machine) == base


class TestSimulationCache:
    def test_lru_eviction(self, gemm_node):
        cache = SimulationCache(max_entries=2)
        result = simulate(gemm_node, processors=2)
        cache.put("a", result)
        cache.put("b", result)
        cache.put("c", result)
        assert cache.get("a") is None
        assert cache.get("b") is result
        assert cache.get("c") is result
        assert len(cache) == 2

    def test_zero_capacity_never_stores(self, gemm_node):
        cache = SimulationCache(max_entries=0)
        cache.put("a", simulate(gemm_node, processors=2))
        assert cache.get("a") is None

    def test_disk_store_survives_new_cache(self, gemm_node, tmp_path):
        result = simulate(gemm_node, processors=2)
        first = SimulationCache(store_dir=str(tmp_path))
        first.put("key", result)
        fresh = SimulationCache(store_dir=str(tmp_path))
        loaded = fresh.get("key")
        assert loaded is not None
        assert loaded.total_time_us == result.total_time_us

    def test_disk_roundtrip_through_run_grid(self, gemm_node, tmp_path):
        cell = SweepCell("g", gemm_node, 4)
        cold_metrics = Metrics()
        run_grid(
            [cell],
            cache=SimulationCache(store_dir=str(tmp_path)),
            metrics=cold_metrics,
        )
        assert cold_metrics.counter("simulate_calls") == 1
        warm_metrics = Metrics()
        run_grid(
            [cell],
            cache=SimulationCache(store_dir=str(tmp_path)),
            metrics=warm_metrics,
        )
        assert warm_metrics.counter("simulate_calls") == 0
        assert warm_metrics.counter("cache_hits") == 1

    def test_corrupt_disk_entry_is_a_counted_miss(self, gemm_node, tmp_path):
        from repro.runtime.metrics import global_metrics

        cache = SimulationCache(store_dir=str(tmp_path))
        cache.put("key", simulate(gemm_node, processors=2))
        path = tmp_path / "key.pkl"
        path.write_bytes(b"\x80\x04 truncated garbage")
        fresh = SimulationCache(store_dir=str(tmp_path))
        before = global_metrics().counter("cache.disk_corrupt")
        assert fresh.get("key") is None
        assert global_metrics().counter("cache.disk_corrupt") == before + 1
        assert not path.exists()  # corrupted entry was deleted

    def test_non_result_disk_entry_is_rejected(self, gemm_node, tmp_path):
        import pickle

        cache = SimulationCache(store_dir=str(tmp_path))
        (tmp_path / "key.pkl").write_bytes(pickle.dumps({"not": "a result"}))
        assert cache.get("key") is None
        assert not (tmp_path / "key.pkl").exists()

    def test_disk_cap_evicts_oldest_by_mtime(self, gemm_node, tmp_path):
        import os

        result = simulate(gemm_node, processors=2)
        cache = SimulationCache(store_dir=str(tmp_path), disk_max_entries=2)
        for index, key in enumerate(["old", "mid", "new"]):
            cache.put(key, result)
            # Force distinct mtimes without sleeping.
            stamp = 1_000_000 + index
            os.utime(tmp_path / f"{key}.pkl", (stamp, stamp))
            cache._evict_disk()
        assert cache.disk_entries() == 2
        assert not (tmp_path / "old.pkl").exists()
        assert (tmp_path / "new.pkl").exists()

    def test_disk_entries_counts_store(self, gemm_node, tmp_path):
        cache = SimulationCache(store_dir=str(tmp_path))
        assert cache.disk_entries() == 0
        cache.put("a", simulate(gemm_node, processors=2))
        assert cache.disk_entries() == 1
        assert SimulationCache().disk_entries() == 0  # no store configured


class TestMetricsSnapshots:
    def test_to_dict_shape_and_sorting(self):
        metrics = Metrics()
        metrics.count("zeta")
        metrics.count("alpha", 2)
        metrics.add_time("simulate", 0.5)
        snapshot = metrics.to_dict()
        assert snapshot == {
            "counters": {"alpha": 2, "zeta": 1},
            "timers": {"simulate": 0.5},
        }
        assert list(snapshot["counters"]) == ["alpha", "zeta"]

    def test_merge_accepts_snapshot_dicts(self):
        metrics = Metrics()
        metrics.count("cells", 1)
        metrics.merge(
            {"counters": {"cells": 4}, "timers": {"simulate": 0.25}}
        )
        assert metrics.counter("cells") == 5
        assert metrics.timers["simulate"] == pytest.approx(0.25)

    def test_merge_snapshot_roundtrip(self):
        source = Metrics()
        source.count("hits", 3)
        source.add_time("parse", 0.1)
        sink = Metrics()
        sink.merge(source.to_dict())
        assert sink.to_dict() == source.to_dict()

    def test_report_format_unchanged_by_snapshot_merge(self):
        metrics = Metrics()
        metrics.merge({"counters": {"cache_hits": 7}, "timers": {}})
        text = metrics.report()
        assert "cache_hits" in text
        assert text.startswith("pipeline profile")


class TestSimulateTask:
    def test_matches_direct_simulate(self, gemm_node):
        direct = simulate(gemm_node, processors=3)
        via_task = simulate_task((gemm_node, 3, None, None, "account", False))
        assert via_task.total_time_us == direct.total_time_us
        assert via_task.totals.remote == direct.totals.remote

    def test_node_program_is_picklable(self, gemm_node):
        import pickle

        clone = pickle.loads(pickle.dumps(gemm_node))
        assert simulate(clone, processors=2).total_time_us == pytest.approx(
            simulate(gemm_node, processors=2).total_time_us
        )


class TestRunGrid:
    def test_results_in_grid_order(self, gemm_node):
        cells = [SweepCell("g", gemm_node, p) for p in (4, 1, 2)]
        results = run_grid(cells, cache=SimulationCache())
        assert [r.processors for r in results] == [4, 1, 2]

    def test_duplicate_cells_simulated_once(self, gemm_node):
        metrics = Metrics()
        cells = [SweepCell("g", gemm_node, 2)] * 3
        results = run_grid(cells, cache=SimulationCache(), metrics=metrics)
        assert metrics.counter("simulate_calls") == 1
        assert metrics.counter("dedup_hits") == 2
        assert results[0] is results[1] is results[2]

    def test_parallel_equals_serial(self, gemm_node):
        cells = [SweepCell("g", gemm_node, p) for p in (1, 2, 3, 4)]
        serial = run_grid(cells, jobs=1, cache=SimulationCache())
        parallel = run_grid(cells, jobs=4, cache=SimulationCache())
        assert [r.total_time_us for r in serial] == [
            r.total_time_us for r in parallel
        ]
        assert [r.totals.remote for r in serial] == [
            r.totals.remote for r in parallel
        ]

    def test_pool_failure_falls_back_to_serial(self, gemm_node, monkeypatch):
        def broken_context():
            raise OSError("no fork for you")

        monkeypatch.setattr(executor_module, "_pool_context", broken_context)
        metrics = Metrics()
        cells = [SweepCell("g", gemm_node, p) for p in (1, 2)]
        results = run_grid(
            cells, jobs=4, cache=SimulationCache(), metrics=metrics
        )
        assert metrics.counter("pool_fallbacks") == 1
        assert len(results) == 2

    def test_on_error_keep_and_raise(self, gemm_node):
        bad = SweepCell("bad", gemm_node, 2, mode="definitely-not-a-mode")
        good = SweepCell("good", gemm_node, 2)
        with pytest.raises(SimulationError):
            run_grid([good, bad], cache=SimulationCache())
        results = run_grid(
            [good, bad], cache=SimulationCache(), on_error="keep"
        )
        assert results[0].processors == 2
        assert isinstance(results[1], ReproError)

    def test_rejects_bad_jobs_and_policy(self, gemm_node):
        with pytest.raises(ReproError):
            run_grid([], on_error="explode")
        with pytest.raises(ReproError):
            resolve_jobs(-2)
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(3) == 3


class TestSweepDeterminism:
    def test_fig4_parallel_equals_serial(self):
        procs = [1, 2, 4]
        _, serial = fig4_series_simulated(
            16, procs, jobs=1, cache=SimulationCache()
        )
        _, parallel = fig4_series_simulated(
            16, procs, jobs=4, cache=SimulationCache()
        )
        assert serial == parallel

    def test_fig5_parallel_equals_serial(self):
        procs = [1, 2, 4]
        _, serial = fig5_series(24, 4, procs, jobs=1, cache=SimulationCache())
        _, parallel = fig5_series(24, 4, procs, jobs=4, cache=SimulationCache())
        assert serial == parallel

    def test_sweep_warm_cache_skips_all_cells(self):
        nodes = gemm_variants(8)
        cache = SimulationCache()
        cold = Metrics()
        first = run_speedup_sweep(
            nodes, [1, 2], machine=figure_machine(), baseline="gemmB",
            cache=cache, metrics=cold,
        )
        warm = Metrics()
        second = run_speedup_sweep(
            nodes, [1, 2], machine=figure_machine(), baseline="gemmB",
            cache=cache, metrics=warm,
        )
        assert first == second
        assert cold.counter("simulate_calls") == 6
        assert warm.counter("simulate_calls") == 0
        assert warm.counter("cache_hits") == 7


class TestAutodistOnEngine:
    def test_parallel_search_matches_serial(self):
        program = gemm_program(6)
        serial = search_distributions(
            program, processors=4, max_candidates=8, jobs=1,
            cache=SimulationCache(),
        )
        parallel = search_distributions(
            program, processors=4, max_candidates=8, jobs=4,
            cache=SimulationCache(),
        )
        assert serial.evaluated == parallel.evaluated
        assert [c.describe() for c in serial.ranking] == [
            c.describe() for c in parallel.ranking
        ]
        assert [c.time_us for c in serial.ranking] == [
            c.time_us for c in parallel.ranking
        ]

    def test_search_records_pipeline_stages(self):
        metrics = Metrics()
        search_distributions(
            gemm_program(6), processors=2, max_candidates=4,
            cache=SimulationCache(), metrics=metrics,
        )
        # The search is a preset of the tuner: its stages are recorded
        # under the tune.* names, and the four admitted candidates all
        # reach scoring.
        assert metrics.timers["tune.enumerate"] > 0.0
        assert metrics.timers["tune.materialize"] > 0.0
        assert metrics.timers["tune.score"] > 0.0
        assert metrics.counter("tune.admitted") == 4
        assert metrics.counter("simulate_calls") == 4
