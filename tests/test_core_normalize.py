"""End-to-end tests of the access-normalization driver (EX1, EX5, EX6)."""

import pytest

from repro.core import access_normalize
from repro.distributions import wrapped_column
from repro.errors import IllegalTransformationError
from repro.ir import allocate_arrays, arrays_equal, execute, make_program
from repro.linalg import Matrix


def figure1_program(**params):
    defaults = {"N1": 5, "N2": 4, "b": 3}
    defaults.update(params)
    return make_program(
        loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
        body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
        arrays=[("B", "N1", "b"), ("A", "N1", "N1+b+N2")],
        distributions={"A": wrapped_column(), "B": wrapped_column()},
        params=defaults,
        name="figure1",
    )


def gemm_program(n=6):
    return make_program(
        loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 0, "N-1")],
        body=["C[i, j] = C[i, j] + A[i, k] * B[k, j]"],
        arrays=[("C", "N", "N"), ("A", "N", "N"), ("B", "N", "N")],
        distributions={
            "A": wrapped_column(),
            "B": wrapped_column(),
            "C": wrapped_column(),
        },
        params={"N": n},
        name="gemm",
    )


def syr2k_program(n=8, b=3):
    return make_program(
        loops=[
            ("i", 1, "N"),
            ("j", "i", "min(i+2b-2, N)"),
            ("k", "max(i-b+1, j-b+1, 1)", "min(i+b-1, j+b-1, N)"),
        ],
        body=[
            "Cb[i, j-i+1] = Cb[i, j-i+1]"
            " + alpha*Ab[k, i-k+b]*Bb[k, j-k+b]"
            " + alpha*Ab[k, j-k+b]*Bb[k, i-k+b]"
        ],
        arrays=[
            ("Cb", "N+1", "2*b"),
            ("Ab", "N+1", "2*b+1"),
            ("Bb", "N+1", "2*b+1"),
        ],
        distributions={
            "Ab": wrapped_column(),
            "Bb": wrapped_column(),
            "Cb": wrapped_column(),
        },
        params={"N": n, "b": b, "alpha": 1},
        name="syr2k",
    )


class TestFigure1:
    def test_transformation_matrix_is_access_matrix(self):
        result = access_normalize(figure1_program())
        assert result.matrix == Matrix([[-1, 1, 0], [0, 1, 1], [1, 0, 0]])
        assert result.transformation.is_unimodular  # |det| = 1 here

    def test_semantics(self):
        program = figure1_program()
        result = access_normalize(program)
        base = allocate_arrays(program, seed=11)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        assert arrays_equal(base, other)

    def test_normalized_rows_provenance(self):
        result = access_normalize(figure1_program())
        assert result.normalized_rows == ((0, False), (1, False), (2, False))

    def test_report_mentions_everything(self):
        result = access_normalize(figure1_program())
        text = result.report()
        assert "figure1" in text
        assert "transformation" in text
        assert "classification" in text


class TestGEMM:
    def test_paper_transformation(self):
        result = access_normalize(gemm_program())
        # Section 8.1: T = [[0,1,0],[0,0,1],[1,0,0]].
        assert result.matrix == Matrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]])

    def test_dependence_columns(self):
        result = access_normalize(gemm_program())
        assert result.dependence_columns == Matrix([[0], [0], [1]])

    def test_transformed_body_matches_paper(self):
        # Paper: C[w, u] = C[w, u] + A[w, v] * B[v, u].
        result = access_normalize(gemm_program())
        statement = result.transformed.nest.body[0]
        assert str(statement.lhs) == "C[w, u]"
        text = str(statement.rhs)
        assert "A[w, v]" in text
        assert "B[v, u]" in text

    def test_semantics(self):
        program = gemm_program(5)
        result = access_normalize(program)
        base = allocate_arrays(program, seed=5)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        assert arrays_equal(base, other)

    def test_legality(self):
        from repro.core import is_legal_transformation

        result = access_normalize(gemm_program())
        assert is_legal_transformation(result.matrix, result.dependence_columns)


class TestSYR2K:
    def test_paper_transformation_with_priority(self):
        # The paper's published access-matrix order (its tie-breaking
        # between equally-ranked subscripts is unspecified; see DESIGN.md).
        result = access_normalize(
            syr2k_program(), priority=["j-i", "j-k", "k", "i-k", "i"]
        )
        assert result.matrix == Matrix([[-1, 1, 0], [0, -1, 1], [0, 0, 1]])
        assert result.normalized_rows == ((0, False), (1, True), (2, False))

    def test_default_heuristic_also_legal_and_normalizing(self):
        from repro.core import is_legal_transformation

        result = access_normalize(syr2k_program())
        assert is_legal_transformation(result.matrix, result.dependence_columns)
        # The outermost row must still be the Cb distribution subscript j-i.
        assert result.matrix.row_at(0) == (-1, 1, 0)

    def test_semantics_paper_matrix(self):
        program = syr2k_program(n=7, b=2)
        result = access_normalize(program, priority=["j-i", "j-k", "k", "i-k", "i"])
        base = allocate_arrays(program, seed=2)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        assert arrays_equal(base, other)

    def test_semantics_default_heuristic(self):
        program = syr2k_program(n=6, b=3)
        result = access_normalize(program)
        base = allocate_arrays(program, seed=8)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        assert arrays_equal(base, other)


class TestFallbacks:
    def test_non_uniform_dependences_fall_back_to_identity(self):
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["A[i, j] = A[j, i] + 1"],
            arrays=[("A", "N", "N")],
            distributions={"A": wrapped_column()},
            params={"N": 5},
            name="transpose",
        )
        result = access_normalize(program)
        assert result.matrix == Matrix.identity(2)
        assert any("non-uniform" in note for note in result.notes)

    def test_no_subscripts_identity(self):
        program = make_program(
            loops=[("i", 0, 4)],
            body=["A[0] = A[0] + 1"],
            arrays=[("A", 1)],
            params={},
            name="scalarish",
        )
        result = access_normalize(program)
        assert result.matrix == Matrix.identity(1)

    def test_dependence_blocks_normalization_row(self):
        # B[i, j] with the i row desired outermost but dependence (1, -1)
        # would be reversed: LegalBasis must drop or fix the offending row
        # and the result must still be legal.
        from repro.core import is_legal_transformation

        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["A[j] = A[j] + B[i, j]"],
            arrays=[("A", "N"), ("B", "N", "N")],
            distributions={"B": wrapped_column()},
            params={"N": 5},
            name="rowsum",
        )
        result = access_normalize(program)
        assert is_legal_transformation(result.matrix, result.dependence_columns)
        base = allocate_arrays(program, seed=4)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        assert arrays_equal(base, other)
