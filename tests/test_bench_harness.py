"""Tests for the benchmark harness: tables, sweeps, charts, figure builders."""

import pytest

from repro.bench import (
    PAPER_PROCS,
    fig4_series,
    fig5_series,
    figure_machine,
    format_table,
    gemm_variants,
    render_chart,
    run_speedup_sweep,
    speedup_table,
    syr2k_variants,
)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows equally wide

    def test_speedup_table(self):
        text = speedup_table([1, 2], {"x": [1.0, 1.5], "y": [1.0, 1.9]})
        assert "1.50" in text
        assert "1.90" in text
        assert text.splitlines()[0].split() == ["P", "x", "y"]


class TestChart:
    def test_render_chart_contains_series_marks(self):
        chart = render_chart(
            [1, 2, 4], {"alpha": [1.0, 1.8, 3.2], "beta": [1.0, 1.2, 1.5]},
            title="demo",
        )
        assert "demo" in chart
        assert "o = alpha" in chart
        assert "x = beta" in chart
        assert "(processors)" in chart

    def test_chart_axis_labels_fit(self):
        chart = render_chart([1, 28], {"s": [1.0, 20.0]}, width=40)
        axis_line = [l for l in chart.splitlines() if "(processors)" in l][0]
        assert "28" in axis_line

    def test_chart_handles_flat_series(self):
        chart = render_chart([1, 2], {"flat": [1.0, 1.0]})
        assert "flat" in chart


class TestSweep:
    def test_run_speedup_sweep_baseline(self):
        nodes = gemm_variants(12)
        series = run_speedup_sweep(
            nodes, procs=[1, 2], machine=figure_machine(), baseline="gemmB"
        )
        assert set(series) == {"gemm", "gemmT", "gemmB"}
        assert series["gemmB"][0] == pytest.approx(1.0)
        # Baselines share one sequential time, so naive P=1 is about 1 too
        # (slightly below: same work, no transformation benefit at P=1).
        assert series["gemm"][0] == pytest.approx(1.0, abs=0.05)

    def test_paper_procs_constant(self):
        assert PAPER_PROCS[0] == 1
        assert PAPER_PROCS[-1] == 28


class TestFigureBuilders:
    def test_gemm_variants_structure(self):
        nodes = gemm_variants(10)
        assert nodes["gemmB"].plan.block_reads
        assert not nodes["gemmT"].plan.block_reads
        assert not nodes["gemm"].plan.block_reads

    def test_syr2k_variants_structure(self):
        nodes = syr2k_variants(20, 4)
        assert len(nodes["syr2kB"].plan.block_reads) == 4

    def test_fig4_series_small(self):
        procs, series = fig4_series(32, [1, 4])
        assert series["gemmB"][0] == pytest.approx(1.0)
        assert series["gemmB"][1] > series["gemm"][1]

    def test_fig5_series_small(self):
        procs, series = fig5_series(40, 6, [1, 4])
        assert series["syr2kB"][1] >= series["syr2kT"][1]

    def test_figure_machine_calibration(self):
        machine = figure_machine()
        assert machine.contention_coefficient == 0.05
        assert machine.compute_per_statement_us == 10.0
        override = figure_machine(contention_coefficient=0.2)
        assert override.contention_coefficient == 0.2
