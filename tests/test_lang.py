"""Tests for the front-end DSL."""

import numpy as np
import pytest

from repro.distributions import Blocked, Wrapped
from repro.errors import ParseError, SemanticError
from repro.ir import allocate_arrays, arrays_equal, execute
from repro.lang import parse_program

GEMM_SOURCE = """
program gemm
param N = 6
real C(N, N) distribute (*, wrapped)
real A(N, N) distribute (*, wrapped)
real B(N, N) distribute (*, wrapped)

for i = 0, N-1
    for j = 0, N-1
        for k = 0, N-1
            C[i, j] = C[i, j] + A[i, k] * B[k, j]
"""

SYR2K_SOURCE = """
program syr2k
param N = 10
param b = 3
param alpha = 1
real Cb(N, 2*b-1) distribute (*, wrapped)
real Ab(N, 2*b-1) distribute (*, wrapped)
real Bb(N, 2*b-1) distribute (*, wrapped)

for i = 0, N-1
    for j = i, min(i+2b-2, N-1)
        for k = max(i-b+1, j-b+1, 0), min(i+b-1, j+b-1, N-1)
            Cb[i, j-i] = Cb[i, j-i] + alpha*Ab[k, i-k+b-1]*Bb[k, j-k+b-1] + alpha*Ab[k, j-k+b-1]*Bb[k, i-k+b-1]
"""


class TestParsing:
    def test_gemm_structure(self):
        program = parse_program(GEMM_SOURCE)
        assert program.name == "gemm"
        assert program.params == {"N": 6}
        assert program.nest.depth == 3
        assert program.nest.indices == ("i", "j", "k")
        assert {d.name for d in program.arrays} == {"A", "B", "C"}
        assert isinstance(program.distributions["C"], Wrapped)
        assert program.distributions["C"].dim == 1

    def test_gemm_matches_builder_program(self):
        from repro.blas import gemm_program

        parsed = parse_program(GEMM_SOURCE)
        built = gemm_program(6)
        base = allocate_arrays(built, seed=14)
        other = {k: v.copy() for k, v in base.items()}
        execute(built, base)
        execute(parsed, other)
        assert arrays_equal(base, other)

    def test_syr2k_max_min_bounds(self):
        program = parse_program(SYR2K_SOURCE)
        k_loop = program.nest.loops[2]
        assert len(k_loop.lower) == 3
        assert len(k_loop.upper) == 3

    def test_syr2k_executes(self):
        from repro.blas import syr2k_program

        parsed = parse_program(SYR2K_SOURCE)
        built = syr2k_program(10, 3)
        base = allocate_arrays(built, seed=15)
        other = {k: v.copy() for k, v in base.items()}
        execute(built, base)
        execute(parsed, other)
        assert arrays_equal(base, other)

    def test_step_clause(self):
        program = parse_program(
            """
real A(20)
for i = 0, 19, step 2
    A[i] = i
"""
        )
        assert program.nest.loops[0].step == 2

    def test_blocked_and_row_distributions(self):
        program = parse_program(
            """
real A(8, 8) distribute (block, *)
real B(8, 8) distribute (wrapped, *)
real C(8, 8)
for i = 0, 7
    C[i, i] = A[i, 0] + B[0, i]
"""
        )
        assert isinstance(program.distributions["A"], Blocked)
        assert program.distributions["A"].dim == 0
        assert program.distributions["B"].dim == 0
        assert "C" not in program.distributions

    def test_comments_and_blank_lines(self):
        program = parse_program(
            """
# a comment
real A(4)  ! trailing comment

for i = 0, 3
    A[i] = 1  # body comment
"""
        )
        assert program.nest.depth == 1

    def test_multiple_body_statements(self):
        program = parse_program(
            """
real A(4, 4)
real B(4, 4)
for i = 0, 3
    for j = 0, 3
        A[i, j] = i + j
        B[i, j] = A[i, j] * 2
"""
        )
        assert len(program.nest.body) == 2

    def test_param_without_default(self):
        program = parse_program(
            """
param N
real A(N)
for i = 0, N-1
    A[i] = 1
"""
        )
        assert "N" in program.params


class TestParseErrors:
    def test_empty_program(self):
        with pytest.raises(ParseError):
            parse_program("   \n  \n")

    def test_missing_body(self):
        with pytest.raises(ParseError):
            parse_program("real A(4)\nfor i = 0, 3\n")

    def test_no_loop(self):
        with pytest.raises(ParseError):
            parse_program("real A(4)\nA[0] = 1\n")

    def test_malformed_for(self):
        with pytest.raises(ParseError):
            parse_program("real A(4)\nfor i in range(4)\n    A[i] = 1\n")

    def test_bad_step(self):
        with pytest.raises(ParseError):
            parse_program("real A(9)\nfor i = 0, 8, step N\n    A[i] = 1\n")

    def test_unindented_body(self):
        with pytest.raises(ParseError):
            parse_program("real A(4)\nfor i = 0, 3\nA[i] = 1\n")

    def test_imperfect_nest_rejected(self):
        source = """
real A(4, 4)
for i = 0, 3
    A[i, 0] = 1
    for j = 0, 3
        A[i, j] = 2
"""
        with pytest.raises(ParseError):
            parse_program(source)

    def test_inconsistent_body_indent(self):
        source = """
real A(4)
for i = 0, 3
    A[i] = 1
      A[i] = 2
"""
        with pytest.raises(ParseError):
            parse_program(source)

    def test_tabs_rejected(self):
        with pytest.raises(ParseError):
            parse_program("real A(4)\nfor i = 0, 3\n\tA[i] = 1\n")

    def test_two_distribution_dims_rejected(self):
        source = """
real A(4, 4) distribute (wrapped, wrapped)
for i = 0, 3
    A[i, i] = 1
"""
        with pytest.raises(ParseError):
            parse_program(source)

    def test_unknown_distribution(self):
        source = """
real A(4) distribute (diagonal)
for i = 0, 3
    A[i] = 1
"""
        with pytest.raises(ParseError):
            parse_program(source)

    def test_undeclared_array_is_semantic_error(self):
        source = """
real A(4)
for i = 0, 3
    B[i] = 1
"""
        with pytest.raises(SemanticError):
            parse_program(source)

    def test_line_numbers_in_errors(self):
        source = "real A(4)\nfor i = 0, 3\n    A[i] = = 1\n"
        with pytest.raises(ParseError) as info:
            parse_program(source)
        assert "line 3" in str(info.value)


class TestEndToEndThroughDSL:
    def test_parse_normalize_simulate(self):
        from repro.codegen import generate_spmd
        from repro.core import access_normalize
        from repro.numa import simulate

        program = parse_program(GEMM_SOURCE)
        result = access_normalize(program)
        node = generate_spmd(result.transformed)
        arrays = allocate_arrays(program, seed=30)
        expected = arrays["C"] + arrays["A"] @ arrays["B"]
        simulate(node, processors=3, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["C"], expected, atol=1e-9)
