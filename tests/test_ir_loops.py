"""Tests for loops, nests, statements, programs, validation and the interpreter."""

import numpy as np
import pytest

from repro.errors import IRError, ParseError
from repro.ir import (
    AffineExpr,
    ArrayDecl,
    Assign,
    BlockRead,
    IfThen,
    Loop,
    LoopNest,
    ModEq,
    allocate_arrays,
    arrays_equal,
    execute,
    make_nest,
    make_program,
    parse_assignment,
    render_nest,
    run_fresh,
    validate_nest,
    validate_program,
)


def figure1_nest() -> LoopNest:
    return make_nest(
        loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
        body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
    )


class TestLoop:
    def test_basic_range(self):
        loop = Loop.make("i", 0, 9)
        assert list(loop.iter_values({})) == list(range(10))
        assert loop.trip_count({}) == 10

    def test_symbolic_bounds(self):
        loop = Loop.make("j", "i", "i+b-1")
        env = {"i": 3, "b": 4}
        assert list(loop.iter_values(env)) == [3, 4, 5, 6]

    def test_max_min_bounds(self):
        loop = Loop.make("k", ["i-2", "0"], ["i+2", "N-1"])
        assert list(loop.iter_values({"i": 1, "N": 3})) == [0, 1, 2]
        assert list(loop.iter_values({"i": 5, "N": 10})) == [3, 4, 5, 6, 7]

    def test_step(self):
        loop = Loop.make("i", 1, 10, step=3)
        assert list(loop.iter_values({})) == [1, 4, 7, 10]

    def test_aligned_step(self):
        # i === 2 (mod 5), starting at the first such value >= 0.
        loop = Loop.make("i", 0, 20, step=5, align=2)
        assert list(loop.iter_values({})) == [2, 7, 12, 17]

    def test_aligned_step_symbolic(self):
        loop = Loop.make("p_loop", 0, 10, step=4, align="p")
        assert list(loop.iter_values({"p": 3})) == [3, 7]

    def test_empty_range(self):
        loop = Loop.make("i", 5, 4)
        assert list(loop.iter_values({})) == []
        assert loop.trip_count({}) == 0

    def test_negative_step_rejected(self):
        with pytest.raises(IRError):
            Loop.make("i", 0, 10, step=-1)

    def test_rational_bounds_use_ceil_floor(self):
        lower = AffineExpr.parse("i/2")
        upper = AffineExpr.parse("i/2 + 5/2")
        loop = Loop(index="j", lower=(lower,), upper=(upper,))
        # i=3: lower 1.5 -> 2, upper 4.0 -> 4.
        assert list(loop.iter_values({"i": 3})) == [2, 3, 4]


class TestLoopNest:
    def test_depth_and_indices(self):
        nest = figure1_nest()
        assert nest.depth == 3
        assert nest.indices == ("i", "j", "k")

    def test_iterate_lexicographic(self):
        nest = make_nest(loops=[("i", 0, 1), ("j", "i", 2)], body=["A[i, j] = 1"])
        points = [(env["i"], env["j"]) for env in nest.iterate({})]
        assert points == [(0, 0), (0, 1), (0, 2), (1, 1), (1, 2)]

    def test_iteration_count(self):
        nest = figure1_nest()
        assert nest.iteration_count({"N1": 4, "N2": 3, "b": 2}) == 4 * 2 * 3

    def test_array_refs(self):
        nest = figure1_nest()
        refs = nest.array_refs()
        assert [(ref.array, wr) for ref, wr in refs] == [
            ("B", True),
            ("B", False),
            ("A", False),
        ]
        assert nest.array_names() == ["B", "A"]

    def test_free_variables(self):
        assert set(figure1_nest().free_variables()) == {"N1", "N2", "b"}

    def test_render(self):
        text = render_nest(figure1_nest())
        assert "for i = 0, N1-1" in text
        assert "B[i, j-i] = B[i, j-i] + A[i, j+k]" in text


class TestStatements:
    def test_parse_assignment_rejects_bad_input(self):
        with pytest.raises(ParseError):
            parse_assignment("A[i] = B[i] = 1", ["i"])
        with pytest.raises(ParseError):
            parse_assignment("3 = A[i]", ["i"])

    def test_substitute_indices_through_assign(self):
        stmt = parse_assignment("A[i, j] = A[i, j] + j", ["i", "j"])
        rewritten = stmt.substitute_indices({
            "i": AffineExpr.var("v"),
            "j": AffineExpr.var("u"),
        })
        assert str(rewritten.lhs) == "A[v, u]"
        assert "u" in str(rewritten.rhs)

    def test_modeq_guard(self):
        cond = ModEq(AffineExpr.parse("j-i"), AffineExpr.var("P"), AffineExpr.var("p"))
        assert cond.evaluate({"i": 1, "j": 5, "P": 4, "p": 0})
        assert not cond.evaluate({"i": 1, "j": 5, "P": 4, "p": 1})

    def test_ifthen_conjunction_and_disjunction(self):
        cond_true = ModEq(AffineExpr.constant(0), AffineExpr.constant(2), AffineExpr.constant(0))
        cond_false = ModEq(AffineExpr.constant(1), AffineExpr.constant(2), AffineExpr.constant(0))
        stmt = parse_assignment("A[i] = 1", ["i"])
        assert not IfThen((cond_true, cond_false), stmt).evaluate_guard({})
        assert IfThen((cond_true, cond_false), stmt, disjunctive=True).evaluate_guard({})

    def test_blockread(self):
        read = BlockRead("A", (None, AffineExpr.var("v")))
        assert str(read) == "read A[*, v]"
        assert read.fixed_values({"v": 7}) == (None, 7)
        assert read.array_refs() == ()


class TestProgram:
    def make(self):
        return make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["C[i, j] = C[i, j] + A[j, i]"],
            arrays=[("C", "N", "N"), ("A", "N", "N")],
            params={"N": 6},
            name="transpose-add",
        )

    def test_array_lookup(self):
        program = self.make()
        assert program.array("C").rank == 2
        assert program.has_array("A")
        assert not program.has_array("Z")
        with pytest.raises(IRError):
            program.array("Z")

    def test_shapes(self):
        program = self.make()
        assert program.array("C").shape({"N": 6}) == (6, 6)

    def test_param_merging(self):
        program = self.make()
        assert program.bound_params({"N": 3}) == {"N": 3}
        bigger = program.with_params(N=10)
        assert bigger.bound_params() == {"N": 10}

    def test_with_nest(self):
        program = self.make()
        clone = program.with_nest(program.nest, name="clone")
        assert clone.name == "clone"
        assert clone.arrays == program.arrays

    def test_validate_ok(self):
        validate_program(self.make())

    def test_validate_missing_array(self):
        program = make_program(
            loops=[("i", 0, 3)],
            body=["A[i] = 1"],
            arrays=[],
        )
        with pytest.raises(IRError):
            validate_program(program)

    def test_validate_rank_mismatch(self):
        program = make_program(
            loops=[("i", 0, 3)],
            body=["A[i] = 1"],
            arrays=[("A", 4, 4)],
        )
        with pytest.raises(IRError):
            validate_program(program)

    def test_validate_duplicate_index(self):
        nest = LoopNest(
            (Loop.make("i", 0, 3), Loop.make("i", 0, 3)),
            (parse_assignment("A[i] = 1", ["i"]),),
        )
        with pytest.raises(IRError):
            validate_nest(nest)

    def test_validate_inner_index_in_bound(self):
        nest = LoopNest(
            (Loop.make("i", 0, "j"), Loop.make("j", 0, 3)),
            (parse_assignment("A[i] = 1", ["i", "j"]),),
        )
        with pytest.raises(IRError):
            validate_nest(nest)


class TestInterpreter:
    def test_matmul_matches_numpy(self):
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 0, "N-1")],
            body=["C[i, j] = C[i, j] + A[i, k] * B[k, j]"],
            arrays=[("C", "N", "N"), ("A", "N", "N"), ("B", "N", "N")],
            params={"N": 5},
        )
        arrays = allocate_arrays(program, seed=1)
        a = arrays["A"].copy()
        b = arrays["B"].copy()
        c = arrays["C"].copy()
        execute(program, arrays)
        np.testing.assert_allclose(arrays["C"], c + a @ b, atol=1e-10)

    def test_index_value_semantics(self):
        program = make_program(
            loops=[("i", 0, 4)],
            body=["A[i] = 2*i + 1"],
            arrays=[("A", 5)],
        )
        arrays = run_fresh(program)
        np.testing.assert_allclose(arrays["A"], [1, 3, 5, 7, 9])

    def test_scalar_param_in_body(self):
        program = make_program(
            loops=[("i", 0, 3)],
            body=["A[i] = alpha * A[i]"],
            arrays=[("A", 4)],
            params={"alpha": 3},
        )
        arrays = allocate_arrays(program, init="index")
        execute(program, arrays)
        np.testing.assert_allclose(arrays["A"], [0, 3, 6, 9])

    def test_unbound_symbol_raises(self):
        program = make_program(
            loops=[("i", 0, 3)],
            body=["A[i] = beta"],
            arrays=[("A", 4)],
        )
        arrays = allocate_arrays(program)
        with pytest.raises(IRError):
            execute(program, arrays)

    def test_guarded_statement(self):
        guard = ModEq(AffineExpr.var("i"), AffineExpr.constant(2), AffineExpr.constant(0))
        inner = parse_assignment("A[i] = 1", ["i"])
        program = make_program(
            loops=[("i", 0, 5)],
            body=[IfThen((guard,), inner)],
            arrays=[("A", 6)],
        )
        arrays = allocate_arrays(program, init="zeros")
        execute(program, arrays)
        np.testing.assert_allclose(arrays["A"], [1, 0, 1, 0, 1, 0])

    def test_blockread_is_noop_for_semantics(self):
        program = make_program(
            loops=[("i", 0, 3)],
            body=[BlockRead("A", (None,)), parse_assignment("A[i] = 1", ["i"])],
            arrays=[("A", 4)],
        )
        arrays = run_fresh(program)
        np.testing.assert_allclose(arrays["A"], [1, 1, 1, 1])

    def test_arrays_equal(self):
        program = self_program = make_program(
            loops=[("i", 0, 3)],
            body=["A[i] = i"],
            arrays=[("A", 4)],
        )
        left = run_fresh(program)
        right = run_fresh(self_program)
        assert arrays_equal(left, right)
        right["A"][0] += 1
        assert not arrays_equal(left, right)
        assert not arrays_equal(left, {})

    def test_allocate_modes(self):
        program = make_program(
            loops=[("i", 0, 3)], body=["A[i] = 1"], arrays=[("A", 4)]
        )
        assert allocate_arrays(program, init="zeros")["A"].sum() == 0
        np.testing.assert_allclose(
            allocate_arrays(program, init="index")["A"], [0, 1, 2, 3]
        )
        with pytest.raises(ValueError):
            allocate_arrays(program, init="bogus")
