"""Tests for the diagnostics framework: codes, spans, reports, suppressions."""

import pytest

from repro.analysis import (
    CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
    Span,
    collect_suppressions,
    normalize_suppressions,
)


def diag(code="LEG001", severity=Severity.ERROR, message="m", **span):
    return Diagnostic(code, severity, message, Span(**span))


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_labels_round_trip(self):
        for severity in Severity:
            assert Severity.from_label(severity.label) is severity

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError):
            Severity.from_label("fatal")


class TestDiagnostic:
    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            Diagnostic("NOPE01", Severity.ERROR, "message")

    def test_every_catalogue_code_constructs(self):
        for code in CODES:
            assert Diagnostic(code, Severity.INFO, "x").code == code

    def test_format_includes_code_severity_and_span(self):
        d = diag(program="gemm", loop="u", statement=0, reference="B[k, j]")
        text = d.format()
        assert text.startswith("[LEG001] error: m")
        assert "gemm: loop u, statement 0, B[k, j]" in text

    def test_to_dict_omits_unset_span_fields(self):
        d = diag(program="p")
        data = d.to_dict()
        assert data["span"] == {"program": "p"}
        assert data["severity"] == "error"


class TestAnalysisReport:
    def make_report(self):
        return AnalysisReport(
            program_name="p",
            diagnostics=(
                diag("LEG002", Severity.ERROR),
                diag("BND002", Severity.WARNING),
                diag("LINT001", Severity.INFO),
            ),
        )

    def test_counts_and_error_codes(self):
        report = self.make_report()
        assert report.count(Severity.ERROR) == 1
        assert report.count(Severity.WARNING) == 1
        assert report.has_errors
        assert report.error_codes == ("LEG002",)

    def test_at_or_above_threshold(self):
        report = self.make_report()
        assert len(report.at_or_above(Severity.INFO)) == 3
        assert len(report.at_or_above(Severity.WARNING)) == 2
        assert len(report.at_or_above(Severity.ERROR)) == 1

    def test_apply_suppressions_moves_not_drops(self):
        report = self.make_report().apply_suppressions(frozenset({"LEG002"}))
        assert not report.has_errors
        assert [d.code for d in report.suppressed] == ["LEG002"]
        assert len(report.diagnostics) == 2

    def test_render_text_clean_and_dirty(self):
        clean = AnalysisReport(program_name="p")
        assert clean.render_text() == "p: clean"
        suppressed = self.make_report().apply_suppressions(
            frozenset({"LEG002", "BND002", "LINT001"})
        )
        assert suppressed.render_text() == "p: clean (3 suppressed)"
        dirty = self.make_report()
        lines = dirty.render_text().splitlines()
        assert lines[0] == "p: 3 diagnostic(s)"
        assert len(lines) == 4

    def test_to_dict_counts(self):
        data = self.make_report().to_dict()
        assert data["counts"] == {"info": 1, "warning": 1, "error": 1}
        assert len(data["diagnostics"]) == 3


class TestSuppressions:
    def test_collect_from_source_comments(self):
        source = (
            "program p\n"
            "# analyze: ignore[LINT002]\n"
            "for i = 0, 5   # analyze: ignore[RACE001, RACE002]\n"
            "    A[i] = A[i] + 1\n"
        )
        assert collect_suppressions(source) == frozenset(
            {"LINT002", "RACE001", "RACE002"}
        )

    def test_no_markers_means_empty(self):
        assert collect_suppressions("program p\nfor i = 0, 5\n") == frozenset()

    def test_unknown_code_in_marker_raises(self):
        with pytest.raises(ValueError, match="unknown diagnostic code"):
            collect_suppressions("# analyze: ignore[BOGUS9]")

    def test_normalize_uppercases_and_validates(self):
        assert normalize_suppressions(["lint001"]) == frozenset({"LINT001"})
        with pytest.raises(ValueError):
            normalize_suppressions(["XYZ123"])
