"""Tests for tiling, cache-aware padding and block-transfer caching."""

import numpy as np
import pytest

from repro.blas import gemm_program
from repro.codegen import (
    generate_spmd,
    generate_tiled_spmd,
    strip_mine,
    tile_nest,
)
from repro.core import access_normalize, optimize_padding_order
from repro.distributions import blocked_column, wrapped_column
from repro.errors import CodegenError
from repro.ir import allocate_arrays, arrays_equal, execute, make_nest, make_program
from repro.linalg import Matrix
from repro.numa import simulate


class TestStripMine:
    def base_nest(self):
        return make_nest(
            loops=[("i", 0, 10), ("j", "i", 14)],
            body=["A[i, j] = i + 2*j"],
        )

    def test_depth_grows(self):
        tiled = strip_mine(self.base_nest(), 0, 4)
        assert tiled.depth == 3
        assert tiled.loops[0].step == 4
        assert tiled.loops[1].index == "i"

    def test_partition_exact(self):
        nest = self.base_nest()
        tiled = strip_mine(nest, 0, 4)
        original = [
            (env["i"], env["j"]) for env in nest.iterate({})
        ]
        via_tiles = [
            (env["i"], env["j"]) for env in tiled.iterate({})
        ]
        assert sorted(via_tiles) == sorted(original)
        assert len(via_tiles) == len(original)

    def test_inner_level_tiling(self):
        nest = self.base_nest()
        tiled = strip_mine(nest, 1, 3)
        original = {(env["i"], env["j"]) for env in nest.iterate({})}
        via_tiles = {(env["i"], env["j"]) for env in tiled.iterate({})}
        assert via_tiles == original

    def test_semantics(self):
        program = make_program(
            loops=[("i", 0, 10), ("j", "i", 14)],
            body=["A[i, j] = i + 2*j"],
            arrays=[("A", 11, 15)],
        )
        tiled = program.with_nest(strip_mine(program.nest, 0, 4))
        base = allocate_arrays(program, init="zeros")
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(tiled, other)
        assert arrays_equal(base, other)

    def test_tile_name_freshness(self):
        nest = make_nest(
            loops=[("i", 0, 5), ("ii", 0, 5)],
            body=["A[i, ii] = 1"],
        )
        tiled = strip_mine(nest, 0, 2)
        names = [loop.index for loop in tiled.loops]
        assert len(set(names)) == 3

    def test_bad_arguments(self):
        nest = self.base_nest()
        with pytest.raises(CodegenError):
            strip_mine(nest, 5, 2)
        with pytest.raises(CodegenError):
            strip_mine(nest, 0, 0)
        strided = make_nest(loops=[("i", 0, 9, 2)], body=["A[i] = 1"])
        with pytest.raises(CodegenError):
            strip_mine(strided, 0, 2)

    def test_tile_nest_by_name(self):
        tiled = tile_nest(self.base_nest(), {"i": 4, "j": 5})
        assert tiled.depth == 4
        with pytest.raises(CodegenError):
            tile_nest(self.base_nest(), {"z": 2})


class TestTiledSPMD:
    def test_tiled_gemm_correct(self):
        program = access_normalize(gemm_program(12)).transformed
        node = generate_tiled_spmd(program, tile_size=3)
        source = gemm_program(12)
        arrays = allocate_arrays(source, seed=60)
        expected = arrays["C"] + arrays["A"] @ arrays["B"]
        simulate(node, processors=3, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["C"], expected, atol=1e-9)

    def test_tiles_partition_work(self):
        program = access_normalize(gemm_program(12)).transformed
        node = generate_tiled_spmd(program, tile_size=4)
        for processors in (2, 3, 5):
            outcome = simulate(node, processors=processors)
            assert outcome.totals.iterations == 12 ** 3

    def test_every_processor_busy_despite_common_factor(self):
        # Tile size 4 with P=2 used to idle processor 1 under value-based
        # wrapping; position-based distribution keeps everyone busy.
        program = access_normalize(gemm_program(16)).transformed
        node = generate_tiled_spmd(program, tile_size=4)
        outcome = simulate(node, processors=2)
        for proc_result in outcome.per_proc:
            assert proc_result.counts.iterations > 0

    def test_blocked_tiling_matches_blocked_arrays(self):
        n = 16
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["A[i, j] = A[i, j] + 1"],
            arrays=[("A", "N", "N")],
            distributions={"A": blocked_column()},
            params={"N": n},
        )
        # Interchange so the distributed loop runs over columns.
        from repro.core import apply_transformation

        swapped = program.with_nest(
            apply_transformation(program.nest, Matrix([[0, 1], [1, 0]])).nest
        )
        node = generate_tiled_spmd(swapped, tile_size=4, schedule="blocked")
        outcome = simulate(node, processors=4)
        totals = outcome.totals
        # Contiguous tiles over a blocked distribution: mostly local.
        assert totals.local > 1.5 * totals.remote


class TestCacheAwarePadding:
    def make_program(self):
        # Only B's subscript i+j is in a distribution dimension; the padding
        # rows that complete the transformation are free to be ordered for
        # stride.  Reading A[j, i] makes one ordering much better than the
        # other (column-major: stride 1 in j, stride N in i).
        return make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["B[i, i+j] = A[j, i] + 1"],
            arrays=[("B", "N", "2*N"), ("A", "N", "N")],
            distributions={"B": wrapped_column()},
            params={"N": 12},
            name="pad-demo",
        )

    def test_optimizer_reduces_stride(self):
        from repro.core import apply_transformation, innermost_stride_score

        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 0, "N-1")],
            body=["B[i+j+k] = A[j, k] + 1"],
            arrays=[("B", "3*N"), ("A", "N", "N")],
            params={"N": 16},
        )
        fixed = Matrix([[1, 1, 1], [0, 1, 0], [0, 0, 1]])
        deps = Matrix.zeros(3, 0)
        optimized = optimize_padding_order(program, fixed, 1, deps)
        base = innermost_stride_score(
            program, apply_transformation(program.nest, fixed).nest
        )
        best = innermost_stride_score(
            program, apply_transformation(program.nest, optimized).nest
        )
        assert best < base
        assert optimized.row_at(2) == (0, 1, 0)  # j innermost: unit stride

    def test_optimizer_rejects_illegal_permutations(self):
        # Section 6.2's matrix: swapping the trailing rows is legal here
        # (both orderings carry all deps), but an ordering that reverses a
        # dependence must be rejected.
        program = make_program(
            loops=[("i", 0, 7), ("j", 0, 7), ("k", 0, 7)],
            body=["B[i+j+k] = A[j, k] + 1"],
            arrays=[("B", 24), ("A", 8, 8)],
        )
        matrix = Matrix([[1, 1, 1], [0, 0, 1], [0, 1, 0]])
        # Dependence (0, 1, -1): carried by row (0,1,0) only with positive
        # product when that row comes before (0,0,1).
        deps = Matrix([[0], [1], [-1]])
        optimized = optimize_padding_order(program, matrix, 1, deps)
        from repro.core import is_legal_transformation

        assert is_legal_transformation(optimized, deps)

    def test_optimizer_respects_direction_vectors(self):
        program = make_program(
            loops=[("i", 0, 7), ("j", 0, 7), ("k", 0, 7)],
            body=["B[i+j+k] = A[j, k] + 1"],
            arrays=[("B", 24), ("A", 8, 8)],
        )
        matrix = Matrix([[1, 1, 1], [0, 0, 1], [0, 1, 0]])
        # A '*' direction on j and k: no reordering is provably legal, so
        # the matrix must come back unchanged.
        optimized = optimize_padding_order(
            program, matrix, 1, Matrix.zeros(3, 0),
            directions=[("=", "*", "*")],
        )
        assert optimized == matrix

    def test_driver_cache_padding_safe(self):
        # Through the full driver the cache policy must never produce an
        # illegal or semantics-changing transformation, whatever it picks.
        from repro.core import is_legal_transformation

        program = self.make_program()
        result = access_normalize(program, padding="cache")
        assert is_legal_transformation(result.matrix, result.dependence_columns)

    def test_cache_padding_preserves_semantics(self):
        program = self.make_program()
        result = access_normalize(program, padding="cache")
        base = allocate_arrays(program, seed=61)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        assert arrays_equal(base, other)

    def test_cache_padding_respects_dependences(self):
        from repro.core import is_legal_transformation

        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 1, "N-1")],
            body=["B[i, i+j] = B[i, i+j] + A[k-1, j]"],
            arrays=[("B", "N", "2*N"), ("A", "N", "N")],
            distributions={"B": wrapped_column()},
            params={"N": 8},
        )
        result = access_normalize(program, padding="cache")
        assert is_legal_transformation(
            result.matrix, result.dependence_columns
        )

    def test_invalid_padding_policy(self):
        with pytest.raises(ValueError):
            access_normalize(self.make_program(), padding="bogus")

    def test_optimizer_noop_when_nothing_free(self):
        # Full-rank access matrix: no free rows, matrix returned unchanged.
        deps = Matrix.zeros(2, 0)
        matrix = Matrix([[0, 1], [1, 0]])
        program = self.make_program()
        assert optimize_padding_order(program, matrix, 2, deps) == matrix


class TestBlockTransferCache:
    def test_cache_reduces_transfers(self):
        program = access_normalize(gemm_program(16)).transformed
        node = generate_spmd(program)
        plain = simulate(node, processors=4)
        cached = simulate(node, processors=4, block_cache=True)
        assert cached.totals.block_transfers < plain.totals.block_transfers
        assert cached.total_time_us < plain.total_time_us

    def test_cached_transfer_count_is_distinct_columns(self):
        n, processors = 16, 4
        program = access_normalize(gemm_program(n)).transformed
        node = generate_spmd(program)
        cached = simulate(node, processors=processors, block_cache=True)
        # Each processor fetches each non-owned column of A exactly once.
        expected = processors * (n - n // processors)
        assert cached.totals.block_transfers == expected

    def test_cache_does_not_change_semantics(self):
        program = gemm_program(8)
        node = generate_spmd(access_normalize(program).transformed)
        arrays = allocate_arrays(program, seed=62)
        expected = arrays["C"] + arrays["A"] @ arrays["B"]
        simulate(
            node, processors=3, arrays=arrays, mode="execute", block_cache=True
        )
        np.testing.assert_allclose(arrays["C"], expected, atol=1e-9)
