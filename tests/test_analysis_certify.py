"""Acceptance tests for the certifying analysis tier (forms + kernels).

Three layers of guarantees:

* every shipped input whose nest has a symbolic tier carries a *verified*
  :class:`~repro.analysis.forms.FormCertificate`;
* injected defects are caught — a mutated form coefficient trips the
  certificate (FORM005), a hand-built unsimplified atom trips the
  well-formedness lint (FORM001), and a mutated kernel guard trips the
  sanitizer (KERN003/KERN004) at the right source line;
* the pass registry, ``--passes``/``--list-passes`` CLI surface, and the
  fuzz oracle's ``certified`` verdict behave as documented.
"""

import json
import os

import pytest

from repro.analysis import Severity, analyze_program
from repro.analysis.cli import _load_input, render_pass_list
from repro.analysis.forms import (
    FormCertificate,
    FormsPass,
    certify_engine,
    certify_node,
)
from repro.analysis.kernels import (
    KernelPass,
    expected_ownership,
    sanitize_generated_source,
)
from repro.analysis.manager import (
    DEFAULT_PASS_NAMES,
    PASS_REGISTRY,
    available_passes,
    build_context,
    default_passes,
    resolve_passes,
)
from repro.cli import main
from repro.codegen.pycodegen import compile_accounting
from repro.errors import ReproError
from repro.fuzz.cli import summarize
from repro.fuzz.oracle import FuzzRecord, fuzz_task
from repro.linalg.sympoly import Mod, SymExpr, const, sym
from repro.numa.symbolic import SymbolicEngine
from repro.runtime.cache import shared_cache

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO_ROOT, "examples", "programs")
CORPUS = os.path.join(REPO_ROOT, "tests", "corpus")
GOLDEN = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "golden_analysis_certify.json",
)


def all_inputs():
    files = [
        os.path.join(EXAMPLES, name)
        for name in sorted(os.listdir(EXAMPLES))
        if name.endswith(".an")
    ]
    files.extend(
        os.path.join(CORPUS, name)
        for name in sorted(os.listdir(CORPUS))
        if name.endswith(".json")
    )
    return files


def context_for(path):
    program, _ = _load_input(path)
    return build_context(
        program, assumptions=tuple(program.assumptions) or None
    )


def gemm_context():
    return context_for(os.path.join(EXAMPLES, "gemm.an"))


# ----------------------------------------------------------------------
# every shipped symbolic form carries a verified certificate
# ----------------------------------------------------------------------

class TestShippedFormsAreCertified:
    def test_every_symbolic_tier_input_verifies(self):
        certified = 0
        for path in all_inputs():
            context = context_for(path)
            assert context.node is not None, f"{path}: pipeline failed"
            certificate = certify_node(context.node)
            if certificate is None:
                continue  # no symbolic tier: FORM006 territory, not a failure
            assert certificate.verified, (
                f"{path}: certificate failed "
                f"({certificate.failure}: {certificate.reason})"
            )
            assert certificate.points > 0
            assert len(certificate.digest) == 64
            certified += 1
        # figure1, gemm, syr2k and singular-access-matrix all have tier 0.
        assert certified >= 4

    def test_certificate_is_memoized_per_node(self):
        context = gemm_context()
        first = certify_node(context.node)
        second = certify_node(context.node)
        assert first is second

    def test_certificate_to_dict_is_json_stable(self):
        certificate = certify_node(gemm_context().node)
        payload = certificate.to_dict()
        assert payload["verified"] is True
        assert payload["failure"] == ""
        assert set(payload) == {
            "program", "verified", "failure", "reason", "params", "anchor",
            "degree", "period", "max_processors", "points", "digest",
        }
        json.dumps(payload)  # raises if anything is not JSON-serializable

    def test_kernel_pass_never_errors_on_shipped_inputs(self):
        """The sanitizer may warn about real inefficiencies, but an ERROR
        (ownership inconsistent with the distributions) on shipped code
        would be a codegen bug."""
        for path in all_inputs():
            context = context_for(path)
            for diagnostic in KernelPass().run(context):
                assert diagnostic.severity < Severity.ERROR, (
                    f"{path}: {diagnostic.format()}"
                )


# ----------------------------------------------------------------------
# injected form defects
# ----------------------------------------------------------------------

class TestInjectedFormDefects:
    def test_mutated_coefficient_fails_certification(self):
        context = gemm_context()
        engine = SymbolicEngine(context.node)
        engine.forms["local"] = engine.forms["local"] + const(1)
        certificate = certify_engine(engine)
        assert not certificate.verified
        assert certificate.failure == "mismatch"
        assert "disagrees with the closed-form engine" in certificate.reason
        assert "P=" in certificate.reason  # names the witness point

    def test_forms_pass_reports_form005_for_mutated_form(self, monkeypatch):
        context = gemm_context()
        engine = SymbolicEngine(context.node)
        engine.forms["remote"] = engine.forms["remote"] + sym("N")
        import repro.numa.simulator as simulator

        monkeypatch.setattr(
            simulator, "_cached_form", lambda node: ("ok", engine)
        )
        shared_cache().clear()  # drop the good memoized certificate
        try:
            diagnostics = FormsPass().run(context)
        finally:
            shared_cache().clear()  # never leak the poisoned certificate
        codes = [d.code for d in diagnostics]
        assert "FORM005" in codes
        (finding,) = [d for d in diagnostics if d.code == "FORM005"]
        assert finding.severity == Severity.ERROR
        assert finding.span.reference == "certificate"
        assert finding.span.program.startswith("gemm")

    def test_unsimplified_atom_is_form001(self):
        context = gemm_context()
        engine = SymbolicEngine(context.node)
        # Bypass the mod() constructor: Mod(2N, 2) should fold to 0, so a
        # raw atom wrapping it is exactly the "unsimplified" defect.
        dead = SymExpr._atom(Mod(sym("N") * 2, 2))
        engine.forms["guards"] = engine.forms["guards"] + dead
        diagnostics = []
        FormsPass()._check_atoms(engine, "gemm", diagnostics)
        (finding,) = diagnostics
        assert finding.code == "FORM001"
        assert finding.severity == Severity.ERROR
        assert finding.span.reference == "form:guards"
        assert "unsimplified atom" in finding.message

    def test_foreign_symbol_is_form004(self):
        context = gemm_context()
        engine = SymbolicEngine(context.node)
        engine.forms["syncs"] = engine.forms["syncs"] + sym("stray")
        diagnostics = []
        FormsPass()._check_symbols(engine, "gemm", diagnostics)
        (finding,) = diagnostics
        assert finding.code == "FORM004"
        assert "stray" in finding.message


# ----------------------------------------------------------------------
# injected kernel defects
# ----------------------------------------------------------------------

SYNTHETIC_KERNEL = '''\
def account(_env, _P, _p, _shapes, _gathers, _cache):
    _n = _env["N"]
    _total = 0
    _dead = _n * 2
    for _i in range(_n):
        _inv = _n + 1
        if _i % _P == _p:
            if _i % _P == _p:
                _total += _inv
    return _total
'''


class TestInjectedKernelDefects:
    def test_generated_kernel_baseline_has_no_errors(self):
        context = gemm_context()
        kernel = compile_accounting(context.node)
        findings = sanitize_generated_source(
            kernel.source,
            artifact="kernel",
            program="gemm",
            expected=expected_ownership(context.node),
        )
        assert all(d.severity < Severity.ERROR for d in findings)

    def test_mutated_guard_to_constant_is_kern003(self):
        context = gemm_context()
        source = compile_accounting(context.node).source
        lines = source.splitlines()
        guard_index = next(
            index for index, line in enumerate(lines)
            if line.lstrip().startswith("if ")
        )
        indent = lines[guard_index][: len(lines[guard_index])
                                    - len(lines[guard_index].lstrip())]
        lines[guard_index] = f"{indent}if True:"
        findings = sanitize_generated_source(
            "\n".join(lines), artifact="kernel", program="gemm"
        )
        flagged = [d for d in findings if d.code == "KERN003"]
        assert flagged, [d.format() for d in findings]
        assert flagged[0].span.statement == guard_index + 1
        assert flagged[0].span.reference == "kernel"

    def test_mutated_ownership_guard_is_kern004(self):
        context = gemm_context()
        source = compile_accounting(context.node).source
        assert expected_ownership(context.node) == {"wrapped"}
        # Turn a wrapped congruence guard into a blocked interval check:
        # the distributions say wrapped, so 'blocked' observed is an error.
        marker = next(
            m for m in ("% _P == _p", "% _P != _p") if m in source
        )
        mutated = source.replace(marker, "<= _hib_fake", 1)
        assert mutated != source
        findings = sanitize_generated_source(
            mutated, artifact="kernel", program="gemm", expected={"wrapped"}
        )
        flagged = [d for d in findings if d.code == "KERN004"]
        assert flagged, [d.format() for d in findings]
        assert flagged[0].severity == Severity.ERROR
        assert "blocked" in flagged[0].message
        assert flagged[0].span.statement is not None

    def test_synthetic_kernel_catches_all_three_warnings(self):
        findings = sanitize_generated_source(
            SYNTHETIC_KERNEL, artifact="kernel", program="synth"
        )
        by_code = {d.code: d for d in findings}
        assert set(by_code) == {"KERN001", "KERN002", "KERN003"}
        assert by_code["KERN002"].span.statement == 4   # _dead never read
        assert by_code["KERN001"].span.statement == 6   # _inv is invariant
        assert by_code["KERN003"].span.statement == 8   # duplicated guard
        assert "_dead" in by_code["KERN002"].message
        assert "_inv" in by_code["KERN001"].message

    def test_unexpected_wrapped_guard_without_wrapped_arrays(self):
        findings = sanitize_generated_source(
            SYNTHETIC_KERNEL, artifact="kernel", program="synth",
            expected=set(),
        )
        flagged = [d for d in findings if d.code == "KERN004"]
        assert flagged and flagged[0].span.statement == 7
        assert "wrapped" in flagged[0].message


# ----------------------------------------------------------------------
# pass registry and CLI surface
# ----------------------------------------------------------------------

class TestPassRegistry:
    def test_registry_lists_all_six_passes(self):
        names = [name for name, _ in available_passes()]
        assert names == [
            "legality", "bounds", "races", "lint", "forms", "kernels",
        ]
        assert list(PASS_REGISTRY) == names

    def test_default_passes_exclude_certifying_tier(self):
        assert DEFAULT_PASS_NAMES == ("legality", "bounds", "races", "lint")
        assert [p.name for p in default_passes()] == list(DEFAULT_PASS_NAMES)

    def test_resolution_is_registry_ordered(self):
        passes = resolve_passes(["kernels", "forms"])
        assert [p.name for p in passes] == ["forms", "kernels"]

    def test_unknown_pass_name_is_rejected(self):
        with pytest.raises(ReproError) as excinfo:
            resolve_passes(["bogus", "forms"])
        assert "unknown analysis pass(es): bogus" in str(excinfo.value)
        assert "kernels" in str(excinfo.value)  # lists what is available

    def test_empty_selection_is_rejected(self):
        with pytest.raises(ReproError):
            resolve_passes(["", "  "])

    def test_render_pass_list_mentions_every_pass(self):
        listing = render_pass_list()
        for name, _ in available_passes():
            assert name in listing


class TestAnalyzeCliPasses:
    def test_list_passes_flag(self, capsys):
        assert main(["analyze", "--list-passes"]) == 0
        out = capsys.readouterr().out
        assert "forms" in out and "kernels" in out

    def test_no_files_without_list_passes_errors(self, capsys):
        assert main(["analyze"]) != 0
        assert "no input files" in capsys.readouterr().err

    def test_unknown_pass_errors(self, capsys):
        path = os.path.join(EXAMPLES, "figure1.an")
        assert main(["analyze", "--passes", "bogus", path]) != 0
        assert "unknown analysis pass(es): bogus" in capsys.readouterr().err

    def test_certifying_passes_run_clean_at_error(self, capsys):
        files = all_inputs()
        assert main(["analyze", "--passes", "forms,kernels", *files]) == 0
        out = capsys.readouterr().out
        assert "figure1: clean" in out


# ----------------------------------------------------------------------
# golden diagnostic snapshots
# ----------------------------------------------------------------------

class TestGoldenDiagnostics:
    """Pin the exact forms+kernels findings for every shipped input.

    The snapshot stores ``[code, severity, reference, statement]`` per
    diagnostic.  A legitimate behavior change (new lint, different
    codegen) updates ``tests/golden_analysis_certify.json`` alongside the
    change; an accidental diff here is a regression.
    """

    def snapshot(self):
        result = {}
        selected = resolve_passes(("forms", "kernels"))
        for path in all_inputs():
            program, suppressions = _load_input(path)
            report = analyze_program(
                program,
                assumptions=tuple(program.assumptions) or None,
                passes=selected,
                suppressions=suppressions,
            )
            result[os.path.basename(path)] = [
                [
                    d.code,
                    d.severity.label,
                    d.span.reference or "",
                    d.span.statement if d.span.statement is not None else -1,
                ]
                for d in report.diagnostics
            ]
        return result

    def test_matches_golden_snapshot(self):
        with open(GOLDEN, encoding="utf-8") as handle:
            golden = json.load(handle)
        assert self.snapshot() == golden


# ----------------------------------------------------------------------
# fuzz oracle: the certified verdict
# ----------------------------------------------------------------------

class TestFuzzCertification:
    def test_seeded_cases_carry_certified_verdicts(self):
        records = [fuzz_task((index, 0)) for index in range(8)]
        allowed = {"yes", "no", "unverified", "n/a"}
        for record in records:
            assert record.certified in allowed, record
            assert record.status != "form-uncertified"
        # At least one seeded case exercises the symbolic tier end to end.
        assert any(record.certified == "yes" for record in records)

    def test_summary_histogram_and_gate(self):
        records = [
            FuzzRecord(index=0, seed=0, status="ok", certified="yes"),
            FuzzRecord(index=1, seed=1, status="ok", certified="yes"),
            FuzzRecord(index=2, seed=2, status="ok", certified="n/a"),
            FuzzRecord(index=3, seed=3, status="ok", certified="unverified"),
        ]
        summary = summarize(records, seed=0, failures=[])
        assert summary["certified"] == {"n/a": 1, "unverified": 1, "yes": 2}
        assert summary["forms_certified"] is True

    def test_uncertified_case_fails_the_gate(self):
        records = [
            FuzzRecord(
                index=0, seed=0, status="form-uncertified",
                stage="certify[wrapped]", certified="no",
            ),
        ]
        summary = summarize(records, seed=0, failures=[])
        assert summary["certified"] == {"no": 1}
        assert summary["forms_certified"] is False
        assert summary["ok"] is False
