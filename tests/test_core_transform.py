"""Tests for loop restructuring with invertible matrices (EX2 + properties).

The key invariants: the transformed nest executes exactly the same set of
statement instances (a bijection between iteration spaces), in an order
consistent with all dependences, and computes the same array contents.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import access_normalize, apply_transformation, nest_constraints
from repro.distributions import wrapped_column
from repro.errors import CodegenError, IRError
from repro.ir import allocate_arrays, arrays_equal, execute, make_nest, make_program
from repro.linalg import Matrix


def section3_nest():
    return make_nest(
        loops=[("i", 1, 3), ("j", 1, 3)],
        body=["A[2i + 4j, i + 5j] = j"],
    )


def section3_program():
    return make_program(
        loops=[("i", 1, 3), ("j", 1, 3)],
        body=["A[2i + 4j, i + 5j] = j"],
        arrays=[("A", 20, 20)],
        name="section3",
    )


class TestSection3Scaling:
    """The paper's non-unimodular worked example (Section 3)."""

    def test_transformed_structure(self):
        t = Matrix([[2, 4], [1, 5]])
        result = apply_transformation(section3_nest(), t)
        outer, inner = result.nest.loops
        # Paper: for u = 6, 18 step 2; inner step 3 aligned to u/2 mod 3.
        assert outer.step == 2
        assert inner.step == 3
        assert list(outer.iter_values({})) == [6, 8, 10, 12, 14, 16, 18]
        assert inner.align is not None

    def test_point_bijection(self):
        t = Matrix([[2, 4], [1, 5]])
        result = apply_transformation(section3_nest(), t)
        original = {(i, j) for i in range(1, 4) for j in range(1, 4)}
        mapped_back = []
        for env in result.nest.iterate({}):
            mapped_back.append(result.unmap_point((env["u"], env["v"])))
        assert len(mapped_back) == len(original)
        assert set(mapped_back) == original

    def test_subscripts_normalized(self):
        t = Matrix([[2, 4], [1, 5]])
        result = apply_transformation(section3_nest(), t)
        statement = result.nest.body[0]
        # Paper: A[u, v] = (2v - u)/6.
        assert str(statement.lhs) == "A[u, v]"
        assert "2/6" in str(statement.rhs) or "1/3" in str(statement.rhs)

    def test_semantics_preserved(self):
        t = Matrix([[2, 4], [1, 5]])
        program = section3_program()
        result = apply_transformation(program.nest, t)
        before = allocate_arrays(program, init="zeros")
        after = allocate_arrays(program, init="zeros")
        execute(program, before)
        execute(program.with_nest(result.nest), after)
        assert arrays_equal(before, after)

    def test_lexicographic_order_of_new_indices(self):
        t = Matrix([[2, 4], [1, 5]])
        result = apply_transformation(section3_nest(), t)
        sequence = [(env["u"], env["v"]) for env in result.nest.iterate({})]
        assert sequence == sorted(sequence)

    def test_map_unmap_roundtrip(self):
        t = Matrix([[2, 4], [1, 5]])
        result = apply_transformation(section3_nest(), t)
        for point in [(1, 1), (2, 3), (3, 2)]:
            assert result.unmap_point(result.map_point(point)) == point
        with pytest.raises(ValueError):
            result.unmap_point((7, 0))  # odd u is off the lattice

    def test_transformation_metadata(self):
        t = Matrix([[2, 4], [1, 5]])
        result = apply_transformation(section3_nest(), t)
        assert not result.is_unimodular
        assert result.determinant == 6
        assert result.source_indices == ("i", "j")
        assert result.new_indices == ("u", "v")


class TestInputValidation:
    def test_shape_mismatch(self):
        with pytest.raises(CodegenError):
            apply_transformation(section3_nest(), Matrix.identity(3))

    def test_singular_matrix(self):
        with pytest.raises(CodegenError):
            apply_transformation(section3_nest(), Matrix([[1, 2], [2, 4]]))

    def test_non_integer_matrix(self):
        from fractions import Fraction

        with pytest.raises(CodegenError):
            apply_transformation(
                section3_nest(), Matrix([[Fraction(1, 2), 0], [0, 1]])
            )

    def test_strided_input_rejected(self):
        nest = make_nest(loops=[("i", 0, 9, 2)], body=["A[i] = 1"])
        with pytest.raises(IRError):
            apply_transformation(nest, Matrix([[1]]))

    def test_custom_index_names(self):
        result = apply_transformation(
            section3_nest(), Matrix.identity(2), new_indices=["a", "b"]
        )
        assert result.new_indices == ("a", "b")
        with pytest.raises(CodegenError):
            apply_transformation(section3_nest(), Matrix.identity(2), new_indices=["a"])

    def test_index_names_avoid_collisions(self):
        nest = make_nest(
            loops=[("i", 0, "u-1"), ("j", 0, "v-1")],
            body=["A[i, j] = 1"],
        )
        result = apply_transformation(nest, Matrix.identity(2))
        assert "u" not in result.new_indices
        assert "v" not in result.new_indices


class TestConstraints:
    def test_nest_constraints_shape(self):
        nest = section3_nest()
        constraints = nest_constraints(nest, [])
        assert len(constraints) == 4
        # i >= 1: coeffs (1, 0), const -1.
        assert constraints[0].coeffs == (1, 0)
        assert constraints[0].const == -1

    def test_symbolic_params_pass_through(self):
        nest = make_nest(
            loops=[("i", 0, "N-1"), ("j", "i", "i+b-1")],
            body=["A[i, j] = 1"],
        )
        constraints = nest_constraints(nest, ["N", "b"])
        widths = {len(c.coeffs) for c in constraints}
        assert widths == {4}


def interchange_cases():
    return [
        Matrix([[0, 1], [1, 0]]),               # interchange
        Matrix([[1, 0], [1, 1]]),               # skewing
        Matrix([[1, 0], [0, -1]]),              # reversal
        Matrix([[2, 0], [0, 1]]),               # scaling
        Matrix([[2, 4], [1, 5]]),               # paper composite
        Matrix([[-1, 1], [1, 0]]),              # mixed
    ]


class TestElementaryTransformations:
    @pytest.mark.parametrize("t", interchange_cases())
    def test_bijection_rectangle(self, t):
        nest = make_nest(
            loops=[("i", 0, 4), ("j", -2, 3)],
            body=["B[i, j] = i + 2*j"],
        )
        result = apply_transformation(nest, t)
        original = {(i, j) for i in range(5) for j in range(-2, 4)}
        unmapped = set()
        count = 0
        for env in result.nest.iterate({}):
            point = tuple(env[name] for name in result.new_indices)
            unmapped.add(result.unmap_point(point))
            count += 1
        assert count == len(original)
        assert unmapped == original

    @pytest.mark.parametrize("t", interchange_cases())
    def test_bijection_triangle(self, t):
        nest = make_nest(
            loops=[("i", 0, 5), ("j", "i", 7)],
            body=["B[i, j] = i + 2*j"],
        )
        result = apply_transformation(nest, t)
        original = {(i, j) for i in range(6) for j in range(i, 8)}
        unmapped = set()
        for env in result.nest.iterate({}):
            point = tuple(env[name] for name in result.new_indices)
            unmapped.add(result.unmap_point(point))
        assert unmapped == original

    def test_symbolic_bounds_interchange(self):
        nest = make_nest(
            loops=[("i", 0, "N-1"), ("j", 0, "M-1")],
            body=["B[i, j] = 1"],
        )
        result = apply_transformation(nest, Matrix([[0, 1], [1, 0]]))
        values = [
            tuple(env[name] for name in result.new_indices)
            for env in result.nest.iterate({"N": 3, "M": 2})
        ]
        assert values == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]


def small_invertible():
    entry = st.integers(-3, 3)
    return st.tuples(entry, entry, entry, entry).map(
        lambda e: Matrix([[e[0], e[1]], [e[2], e[3]]])
    ).filter(lambda m: m.det() != 0)


class TestBijectionProperty:
    @given(small_invertible(), st.integers(2, 5), st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_random_matrix_rectangle(self, t, width, height):
        nest = make_nest(
            loops=[("i", 0, width - 1), ("j", 0, height - 1)],
            body=["B[i, j] = 1"],
        )
        result = apply_transformation(nest, t)
        original = {(i, j) for i in range(width) for j in range(height)}
        unmapped = []
        for env in result.nest.iterate({}):
            point = tuple(env[name] for name in result.new_indices)
            unmapped.append(result.unmap_point(point))
        assert len(unmapped) == len(original)
        assert set(unmapped) == original

    @given(small_invertible(), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_random_matrix_triangle_semantics(self, t, size):
        program = make_program(
            loops=[("i", 0, size), ("j", 0, "i")],
            body=["S[0] = S[0] + B[i, j]"],
            arrays=[("S", 1), ("B", size + 1, size + 1)],
            name="sum",
        )
        result = apply_transformation(program.nest, t)
        base = allocate_arrays(program, init="index")
        transformed = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(program.with_nest(result.nest), transformed)
        # Summation of distinct integers: exact in float64 at this size.
        assert base["S"][0] == transformed["S"][0]


class TestDepth3:
    def test_figure1_transformation_bounds(self):
        """EX1: the Figure 1(a) -> 1(c) restructuring."""
        program = make_program(
            loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
            body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
            arrays=[("B", "N1", "b"), ("A", "N1", "N1+b+N2")],
            distributions={"A": wrapped_column(), "B": wrapped_column()},
            params={"N1": 5, "N2": 4, "b": 3},
            name="figure1",
        )
        t = Matrix([[-1, 1, 0], [0, 1, 1], [1, 0, 0]])
        result = apply_transformation(program.nest, t)
        params = {"N1": 5, "N2": 4, "b": 3}
        # Outer loop: u = j - i in 0 .. b-1.
        outer = result.nest.loops[0]
        assert outer.lower_value(params) == 0
        assert outer.upper_value(params) == 2
        # Middle loop at u=0: v = j + k in u .. u + N1 + N2 - 2.
        env = dict(params, u=0)
        middle = result.nest.loops[1]
        assert middle.lower_value(env) == 0
        assert middle.upper_value(env) == 7
        # Iteration count preserved.
        assert result.nest.iteration_count(params) == 5 * 3 * 4

    def test_figure1_semantics(self):
        program = make_program(
            loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
            body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
            arrays=[("B", "N1", "b"), ("A", "N1", "N1+b+N2")],
            params={"N1": 5, "N2": 4, "b": 3},
        )
        t = Matrix([[-1, 1, 0], [0, 1, 1], [1, 0, 0]])
        result = apply_transformation(program.nest, t)
        base = allocate_arrays(program, seed=3)
        transformed = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(program.with_nest(result.nest), transformed)
        assert arrays_equal(base, transformed)
