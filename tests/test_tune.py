"""Tests for the transformation autotuner (``repro tune`` / ``/v1/tune``).

Covers the tentpole guarantees:

* **Enumerator completeness** — the paper's hand-picked transformations
  for GEMM, SYR2K (under the published priority) and the Figure-1 kernel
  all appear among the enumerated candidates.
* **Pruner soundness** — every candidate the pruner admits passes
  Section 6's legality criterion, and the fuzz-oracle hook
  (``verify_search_legality``) finds no admitted-but-illegal candidate.
* **Determinism** — rendered output is byte-identical at any ``--jobs``
  value, and the service's ``/v1/tune`` reproduces the direct CLI byte
  for byte.
"""

import json

import pytest

from repro.blas import PAPER_PRIORITY, gemm_program, syr2k_program
from repro.core.access_matrix import build_access_matrix
from repro.core.legal import is_legal_transformation
from repro.errors import ReproError
from repro.lang.parser import parse_program
from repro.linalg.fraction_matrix import Matrix
from repro.runtime import SimulationCache, reset_shared_cache, set_shared_cache
from repro.runtime.metrics import Metrics
from repro.service.client import ServiceClient
from repro.service.jobs import run_tune
from repro.service.protocol import ServiceConfig
from repro.service.server import ServerThread
from repro.tune import (
    SearchSpace,
    assignment_count,
    enumerate_recipes,
    tune_program,
    verify_search_legality,
)
from repro.tune.search import _dependence_context

FIGURE1 = "examples/programs/figure1.an"

#: The paper's hand-picked transformations (golden values shared with
#: tests/test_core_normalize.py).
GEMM_T = Matrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]])
SYR2K_T = Matrix([[-1, 1, 0], [0, -1, 1], [0, 0, 1]])
FIGURE1_T = Matrix([[-1, 1, 0], [0, 1, 1], [1, 0, 0]])


def _enumerated_matrices(program, space, priority=None):
    dependences, deps, _ = _dependence_context(program, None)
    access = build_access_matrix(
        program.nest, program.distributions, priority=priority
    )
    return [
        outcome.matrix
        for outcome in enumerate_recipes(
            access, deps, program.nest.depth, space, dependences=dependences
        )
        if outcome.matrix is not None
    ]


class TestEnumeratorCompleteness:
    def test_gemm_paper_transformation_enumerated(self):
        matrices = _enumerated_matrices(gemm_program(8), SearchSpace())
        assert GEMM_T in matrices

    def test_syr2k_paper_transformation_enumerated(self):
        matrices = _enumerated_matrices(
            syr2k_program(12, 3), SearchSpace(), priority=list(PAPER_PRIORITY)
        )
        assert SYR2K_T in matrices

    def test_figure1_paper_transformation_enumerated(self):
        program = parse_program(open(FIGURE1).read(), name=FIGURE1)
        matrices = _enumerated_matrices(program, SearchSpace())
        assert FIGURE1_T in matrices

    def test_space_goes_beyond_the_derived_transformation(self):
        # Row subsets, skews and scalings give strictly more candidates
        # than the paper's single derived pipeline.
        matrices = _enumerated_matrices(gemm_program(8), SearchSpace())
        assert len({repr(m) for m in matrices}) > 3

    def test_classic_autodist_menu_is_a_prefix(self):
        from repro.core.autodist import candidate_assignments as classic
        from repro.tune.space import candidate_assignments as tuner

        program = gemm_program(8)
        space = SearchSpace(block_sizes=())
        classic_list = [
            {k: repr(v) for k, v in a.items()} for a in classic(program)
        ]
        tuner_list = [
            {k: repr(v) for k, v in a.items()} for a in tuner(program, space)
        ]
        assert tuner_list == classic_list
        assert assignment_count(program, space) == len(classic_list)

    def test_block_sizes_extend_the_assignment_menu(self):
        program = gemm_program(8)
        plain = assignment_count(program, SearchSpace(block_sizes=()))
        extended = assignment_count(program, SearchSpace(block_sizes=(4, 8)))
        assert extended == 8**3 and plain == 4**3

    def test_invalid_spaces_are_rejected(self):
        with pytest.raises(ReproError):
            SearchSpace(recipes=("derived", "teleport"))
        with pytest.raises(ReproError):
            SearchSpace(block_sizes=(0,))
        with pytest.raises(ReproError):
            SearchSpace(scale_factors=(1,))


class TestPrunerSoundness:
    def test_every_scored_candidate_is_legal(self):
        program = syr2k_program(8, 2)
        result = tune_program(
            program, processors=(4,), params=None, budget=24,
            priority=list(PAPER_PRIORITY),
        )
        _, deps, _ = _dependence_context(program, None)
        assert result.ranking
        for candidate in result.ranking:
            assert is_legal_transformation(candidate.matrix, deps)

    def test_oracle_hook_finds_no_violation(self):
        checked, violation = verify_search_legality(syr2k_program(8, 2))
        assert checked > 0
        assert violation == ""

    def test_pruned_candidates_carry_reasons(self):
        result = tune_program(
            syr2k_program(8, 2), processors=(4,), budget=24,
            priority=list(PAPER_PRIORITY),
        )
        for candidate in result.pruned:
            assert candidate.status == "pruned" and candidate.reason

    def test_budget_caps_admitted(self):
        result = tune_program(gemm_program(8), processors=(4,), budget=5)
        assert result.admitted == 5
        assert result.scored <= 5

    def test_bad_arguments_are_repro_errors(self):
        with pytest.raises(ReproError):
            tune_program(gemm_program(8), processors=())
        with pytest.raises(ReproError):
            tune_program(gemm_program(8), budget=-1)


class TestRankingAndBaseline:
    def test_best_matches_or_beats_the_paper_configuration(self):
        # GEMM's declared distributions + derived T are the paper's pick;
        # the tuner must never rank anything above-cost first.
        result = tune_program(gemm_program(8), processors=(4,), budget=40)
        assert result.baseline is not None
        assert result.baseline.status == "scored"
        assert result.best.total_us <= result.baseline.total_us

    def test_ranking_is_sorted_and_provenanced(self):
        result = tune_program(gemm_program(8), processors=(4,), budget=24)
        totals = [c.total_us for c in result.ranking]
        assert totals == sorted(totals)
        for candidate in result.ranking:
            assert candidate.provenance_text()
            assert candidate.labels


def _payload(**overrides):
    payload = {
        "source": open(FIGURE1).read(),
        "name": FIGURE1,
        "params": {"N": 12},
        "processors": [4],
        "budget": 12,
        "top_k": 3,
        "block_sizes": [8],
        "json": False,
    }
    payload.update(overrides)
    return payload


class TestDeterminismAndService:
    def test_jobs_do_not_change_the_rendered_output(self):
        serial = run_tune(_payload(), jobs=1, metrics=Metrics())
        parallel = run_tune(_payload(), jobs=2, metrics=Metrics())
        assert serial == parallel

    def test_json_document_is_well_formed(self):
        document = json.loads(run_tune(_payload(json=True)))
        assert document["tool"] == "repro-tune"
        assert document["scored"] >= 1
        assert document["ranking"]
        best = document["ranking"][0]
        assert best["matrix"] and best["times_us"]

    def test_service_tune_matches_cli_byte_for_byte(self):
        cache = set_shared_cache(SimulationCache())
        try:
            direct = run_tune(_payload(json=True), cache=cache)
            config = ServiceConfig(
                port=0, jobs=1, log_requests=False, batch_window_s=0.005,
                queue_limit=32, timeout_s=60.0,
            )
            with ServerThread(config) as handle:
                client = ServiceClient("127.0.0.1", handle.port, timeout=60.0)
                response = client.tune(_payload(json=True))
        finally:
            reset_shared_cache()
        assert response["ok"] is True
        assert response["result"]["stdout"] == direct

    def test_metrics_record_search_counters(self):
        metrics = Metrics()
        run_tune(_payload(), metrics=metrics)
        counters = metrics.to_dict()["counters"]
        assert counters.get("tune.candidates", 0) >= counters.get(
            "tune.admitted", 0
        )
        assert counters.get("tune.scored", 0) >= 1

    def test_cli_tune_smoke(self, capsys):
        from repro.cli import main

        code = main([
            "tune", FIGURE1, "--param", "N=12", "-P", "4",
            "--budget", "8", "--top-k", "2",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "best:" in out and "provenance:" in out
