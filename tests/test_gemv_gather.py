"""Tests for the GEMV workload and whole-array gather transfers."""

import numpy as np
import pytest

from repro.blas import gemv_program, gemv_reference
from repro.codegen import RefClass, generate_spmd, plan_locality, render_node_program
from repro.core import access_normalize
from repro.distributions import Blocked, Wrapped
from repro.ir import allocate_arrays, execute, make_program, validate_program
from repro.numa import simulate


class TestGEMVWorkload:
    def test_program_validates(self):
        validate_program(gemv_program(16))

    def test_reference_semantics(self):
        program = gemv_program(10)
        arrays = allocate_arrays(program, seed=90)
        expected = gemv_reference(arrays)
        execute(program, arrays)
        np.testing.assert_allclose(arrays["Y"], expected, atol=1e-9)

    def test_identity_transformation(self):
        # GEMV's natural loop order already matches the distribution.
        from repro.core import is_identity

        result = access_normalize(gemv_program(16))
        assert is_identity(result.matrix)

    def test_parallel_execution(self):
        program = gemv_program(12)
        node = generate_spmd(access_normalize(program).transformed)
        arrays = allocate_arrays(program, seed=91)
        expected = gemv_reference(arrays)
        simulate(node, processors=3, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["Y"], expected, atol=1e-9)


class TestGatherPlanning:
    def test_x_is_gathered(self):
        program = access_normalize(gemv_program(16)).transformed
        plan = plan_locality(program.nest, program.distributions)
        x_infos = [info for info in plan.refs if info.ref.array == "X"]
        assert x_infos[0].ref_class == RefClass.COVERED
        assert "gathered" in x_infos[0].reason
        assert any(
            read.array == "X" and all(p is None for p in read.pattern)
            for _, read in plan.block_reads
        )

    def test_rendered_as_read_star(self):
        node = generate_spmd(access_normalize(gemv_program(16)).transformed)
        assert "read X[*];" in render_node_program(node)

    def test_written_arrays_never_gathered(self):
        # Same shape as GEMV but X is also written: a gathered copy would
        # go stale, so the reference must stay CHECK.
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["Y[i] = Y[i] + X[j]", "X[j] = X[j] * 1"],
            arrays=[("Y", "N"), ("X", "N")],
            distributions={"Y": Wrapped(0), "X": Wrapped(0)},
            params={"N": 8},
        )
        plan = plan_locality(program.nest, program.distributions)
        x_reads = [
            info for info in plan.refs
            if info.ref.array == "X" and not info.is_write
        ]
        assert all(info.ref_class == RefClass.CHECK for info in x_reads)

    def test_outer_dependent_subscript_not_gathered(self):
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-2")],
            body=["Y[i] = Y[i] + X[i+j]"],
            arrays=[("Y", "N"), ("X", "2*N")],
            distributions={"Y": Wrapped(0), "X": Wrapped(0)},
            params={"N": 8},
        )
        plan = plan_locality(program.nest, program.distributions)
        x_info = [i for i in plan.refs if i.ref.array == "X"][0]
        assert x_info.ref_class == RefClass.CHECK


class TestGatherAccounting:
    def test_gather_costs(self):
        n, processors = 64, 4
        node = generate_spmd(access_normalize(gemv_program(n)).transformed)
        outcome = simulate(node, processors=processors)
        totals = outcome.totals
        # Per outer iteration each processor gathers the 3/4 of X it does
        # not own, paying one message per remote owner.
        outer_iterations = n
        assert totals.block_transfers == outer_iterations * (processors - 1)
        assert totals.block_bytes == outer_iterations * (n - n // processors) * 8
        # Y and A accesses all local; X consumption local too.
        assert totals.remote == 0

    def test_gather_with_cache_once_per_processor(self):
        n, processors = 64, 4
        node = generate_spmd(access_normalize(gemv_program(n)).transformed)
        outcome = simulate(node, processors=processors, block_cache=True)
        assert outcome.totals.block_transfers == processors * (processors - 1)

    def test_single_processor_gather_free(self):
        node = generate_spmd(access_normalize(gemv_program(16)).transformed)
        outcome = simulate(node, processors=1)
        assert outcome.totals.block_transfers == 0
        assert outcome.totals.block_bytes == 0

    def test_blocked_distribution_gather(self):
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["Y[i] = Y[i] + X[j]"],
            arrays=[("Y", "N"), ("X", "N")],
            distributions={"Y": Blocked(0), "X": Blocked(0)},
            params={"N": 16},
        )
        node = generate_spmd(program, schedule="blocked")
        outcome = simulate(node, processors=4)
        # Each processor owns a 4-element block of X; gathers 12 remote
        # elements per outer iteration.
        assert outcome.totals.block_bytes == 16 * 12 * 8

    def test_gather_speedup_scales(self):
        node = generate_spmd(access_normalize(gemv_program(96)).transformed)
        seq = simulate(node, processors=1).total_time_us
        speed8 = simulate(node, processors=8, block_cache=True).speedup(seq)
        assert speed8 > 6.0
