"""End-to-end guarantees: examples and corpus analyze clean, and the
static analyzer never calls a dynamically-failing case clean."""

import json
import os

from repro.analysis import Severity, analyze_program, normalize_suppressions
from repro.analysis.cli import _load_input
from repro.fuzz.oracle import fuzz_task
from repro.lang import parse_program

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO_ROOT, "examples", "programs")
CORPUS = os.path.join(REPO_ROOT, "tests", "corpus")


def all_inputs():
    files = [
        os.path.join(EXAMPLES, name)
        for name in sorted(os.listdir(EXAMPLES))
        if name.endswith(".an")
    ]
    files.extend(
        os.path.join(CORPUS, name)
        for name in sorted(os.listdir(CORPUS))
        if name.endswith(".json")
    )
    return files


class TestShippedInputsAnalyzeClean:
    def test_every_example_and_corpus_entry_is_error_free(self):
        inputs = all_inputs()
        assert len(inputs) >= 6  # 3 examples + 3 corpus entries
        for path in inputs:
            program, suppressions = _load_input(path)
            report = analyze_program(
                program,
                assumptions=tuple(program.assumptions) or None,
                suppressions=suppressions,
            )
            flagged = report.at_or_above(Severity.ERROR)
            assert not flagged, (
                f"{path} not clean: "
                + "; ".join(d.format() for d in flagged)
            )

    def test_corpus_suppressions_name_known_codes(self):
        for name in sorted(os.listdir(CORPUS)):
            if not name.endswith(".json"):
                continue
            with open(os.path.join(CORPUS, name), encoding="utf-8") as handle:
                data = json.load(handle)
            ignore = data.get("analyze", {}).get("ignore", ())
            normalize_suppressions(ignore)  # raises on an unknown code

    def test_syr2k_needs_its_assumptions(self):
        """The shipped assume facts are load-bearing for the bounds proof —
        without them the checker degrades to warnings, never errors."""
        path = os.path.join(EXAMPLES, "syr2k.an")
        with open(path, encoding="utf-8") as handle:
            program = parse_program(handle.read(), name=path)
        assert program.assumptions
        report = analyze_program(program, assumptions=())
        assert not report.at_or_above(Severity.ERROR)


class TestStaticDynamicConsistency:
    def test_seeded_fuzz_batch_has_no_inconsistencies(self):
        """Analyzer clean must imply oracle match: a record whose dynamic
        verdict is a mismatch while the static verdict is clean comes back
        with status 'inconsistent' — there must be none."""
        records = [fuzz_task((index, 0)) for index in range(40)]
        assert len(records) == 40
        statuses = {record.status for record in records}
        assert "inconsistent" not in statuses
        # Every completed pipeline records a static verdict.
        for record in records:
            if record.status in ("ok", "mismatch", "inconsistent"):
                assert record.static, f"case {record.index} has no static verdict"
            if record.status == "ok":
                assert record.static == "clean" or record.static.startswith(
                    "flagged:"
                )
