"""Final cross-cutting properties: monotonicity and partition invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.blas import gemm_program
from repro.codegen import generate_spmd, generate_tiled_spmd
from repro.core import access_normalize
from repro.numa import butterfly_gp1000, simulate


class TestMonotonicityProperties:
    @given(st.integers(1, 9))
    @settings(max_examples=9, deadline=None)
    def test_block_cache_never_hurts(self, processors):
        normalized = access_normalize(gemm_program(18)).transformed
        node = generate_spmd(normalized)
        plain = simulate(node, processors=processors)
        cached = simulate(node, processors=processors, block_cache=True)
        assert cached.totals.block_transfers <= plain.totals.block_transfers
        assert cached.total_time_us <= plain.total_time_us
        # Caching never changes the work done.
        assert cached.totals.statements == plain.totals.statements
        assert cached.totals.local == plain.totals.local

    @given(st.integers(1, 8), st.integers(1, 6))
    @settings(max_examples=12, deadline=None)
    def test_tiling_preserves_work(self, processors, tile):
        normalized = access_normalize(gemm_program(12)).transformed
        node = generate_tiled_spmd(normalized, tile_size=tile)
        outcome = simulate(node, processors=processors)
        assert outcome.totals.iterations == 12 ** 3
        assert outcome.totals.statements == 12 ** 3

    @given(st.floats(0.0, 0.5))
    @settings(max_examples=10, deadline=None)
    def test_contention_monotone(self, coefficient):
        normalized = access_normalize(gemm_program(16)).transformed
        node = generate_spmd(normalized, block_transfers=False)
        quiet = simulate(node, processors=4, machine=butterfly_gp1000())
        loud = simulate(
            node,
            processors=4,
            machine=butterfly_gp1000(contention_coefficient=coefficient),
        )
        assert loud.total_time_us >= quiet.total_time_us - 1e-9
        assert loud.remote_multiplier >= 1.0

    @given(st.integers(2, 10))
    @settings(max_examples=9, deadline=None)
    def test_more_processors_never_more_per_proc_work(self, processors):
        normalized = access_normalize(gemm_program(20)).transformed
        node = generate_spmd(normalized)
        one = simulate(node, processors=1)
        many = simulate(node, processors=processors)
        per_proc_max = max(r.counts.iterations for r in many.per_proc)
        assert per_proc_max <= one.totals.iterations
        # And the union is exact.
        assert many.totals.iterations == one.totals.iterations


class TestScheduleEquivalence:
    @given(st.integers(1, 7), st.sampled_from(["wrapped", "blocked"]))
    @settings(max_examples=14, deadline=None)
    def test_schedules_partition_identically_sized_work(self, processors, schedule):
        normalized = access_normalize(gemm_program(14)).transformed
        node = generate_spmd(normalized, schedule=schedule)
        outcome = simulate(node, processors=processors)
        assert outcome.totals.iterations == 14 ** 3
        # Blocked dealing uses ceil-sized blocks of outer slices, so a
        # processor can deviate from the ideal share by up to one block
        # (the trailing processor may even sit idle).
        per_slice = 14 * 14  # iterations per outer value
        slices = 14
        block = -(-slices // processors)
        ideal = 14 ** 3 / processors
        for result in outcome.per_proc:
            assert abs(result.counts.iterations - ideal) <= block * per_slice
