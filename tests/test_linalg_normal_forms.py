"""Unit and property tests for Hermite/Smith normal forms and Diophantine solving."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NoIntegerSolutionError
from repro.linalg import (
    Matrix,
    column_hnf,
    hnf_diagonal,
    integer_null_basis,
    row_hnf,
    smith_normal_form,
    solve_diophantine,
    try_solve_diophantine,
)


def small_int_matrix(max_dim=4, lo=-6, hi=6):
    return st.integers(1, max_dim).flatmap(
        lambda n: st.integers(1, max_dim).flatmap(
            lambda m: st.lists(
                st.lists(st.integers(lo, hi), min_size=m, max_size=m),
                min_size=n,
                max_size=n,
            )
        )
    ).map(Matrix)


def invertible_matrix(max_dim=4, lo=-4, hi=4):
    return small_int_matrix(max_dim, lo, hi).filter(
        lambda m: m.is_square and m.det() != 0
    )


class TestColumnHNF:
    def test_identity(self):
        h, u = column_hnf(Matrix.identity(3))
        assert h == Matrix.identity(3)
        assert u.is_unimodular()

    def test_paper_scaling_example(self):
        # T = [[2,4],[1,5]] from Section 3; det = 6.
        t = Matrix([[2, 4], [1, 5]])
        h, u = column_hnf(t)
        assert t @ u == h
        assert u.is_unimodular()
        # Lower triangular with positive diagonal whose product is |det|.
        assert h[0, 1] == 0
        assert h[0, 0] > 0 and h[1, 1] > 0
        assert h[0, 0] * h[1, 1] == 6
        # The outermost transformed loop of the paper steps by 2.
        assert hnf_diagonal(t)[0] == 2

    def test_lower_triangular_shape(self):
        t = Matrix([[3, 1, 4], [1, 5, 9], [2, 6, 5]])
        h, u = column_hnf(t)
        assert t @ u == h
        for i in range(3):
            for j in range(i + 1, 3):
                assert h[i, j] == 0
        for i in range(3):
            assert h[i, i] > 0
            for j in range(i):
                assert 0 <= h[i, j] < h[i, i]

    def test_rectangular(self):
        a = Matrix([[2, 4, 6], [0, 0, 5]])
        h, u = column_hnf(a)
        assert a @ u == h
        assert u.is_unimodular()

    @given(invertible_matrix())
    @settings(max_examples=60, deadline=None)
    def test_factorization_property(self, t):
        h, u = column_hnf(t)
        assert t @ u == h
        assert abs(u.det()) == 1
        n = t.nrows
        for i in range(n):
            assert h[i, i] > 0
            for j in range(i + 1, n):
                assert h[i, j] == 0

    @given(invertible_matrix())
    @settings(max_examples=40, deadline=None)
    def test_diagonal_product_is_abs_det(self, t):
        diag = hnf_diagonal(t)
        product = 1
        for value in diag:
            product *= value
        assert product == abs(t.det())


class TestRowHNF:
    def test_factorization(self):
        a = Matrix([[2, 4], [1, 5], [3, 3]])
        h, u = row_hnf(a)
        assert u @ a == h
        assert u.is_unimodular()

    @given(small_int_matrix())
    @settings(max_examples=40, deadline=None)
    def test_row_factorization_property(self, a):
        h, u = row_hnf(a)
        assert u @ a == h
        assert abs(u.det()) == 1


class TestSmith:
    def test_diagonal_and_divisibility(self):
        a = Matrix([[2, 4, 4], [-6, 6, 12], [10, 4, 16]])
        s, u, v = smith_normal_form(a)
        assert u @ a @ v == s
        assert u.is_unimodular() and v.is_unimodular()
        diag = [int(s[i, i]) for i in range(3)]
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert s[i, j] == 0
        for first, second in zip(diag, diag[1:]):
            if first and second:
                assert second % first == 0

    def test_singular_matrix(self):
        a = Matrix([[1, 2], [2, 4]])
        s, u, v = smith_normal_form(a)
        assert u @ a @ v == s
        assert s[1, 1] == 0

    @given(small_int_matrix())
    @settings(max_examples=50, deadline=None)
    def test_smith_property(self, a):
        s, u, v = smith_normal_form(a)
        assert u @ a @ v == s
        assert abs(u.det()) == 1
        assert abs(v.det()) == 1
        diag = [int(s[i, i]) for i in range(min(a.nrows, a.ncols))]
        for i in range(a.nrows):
            for j in range(a.ncols):
                if i != j:
                    assert s[i, j] == 0
        nonzero = [d for d in diag if d]
        for first, second in zip(nonzero, nonzero[1:]):
            assert second % first == 0


class TestDiophantine:
    def test_unique_solution(self):
        a = Matrix([[2, 0], [0, 3]])
        solution = solve_diophantine(a, [4, 9])
        assert solution.particular == [2, 3]
        assert solution.is_unique

    def test_no_solution(self):
        a = Matrix([[2]])
        with pytest.raises(NoIntegerSolutionError):
            solve_diophantine(a, [3])
        assert try_solve_diophantine(a, [3]) is None

    def test_underdetermined(self):
        a = Matrix([[1, 1, -1]])
        solution = solve_diophantine(a, [5])
        assert len(solution.homogeneous) == 2
        # Every generated solution satisfies the equation.
        for coeffs in ([0, 0], [1, 0], [2, -3]):
            x = solution.sample(coeffs)
            assert a.apply(x) == [5]

    def test_inconsistent_overdetermined(self):
        a = Matrix([[1, 0], [1, 0]])
        with pytest.raises(NoIntegerSolutionError):
            solve_diophantine(a, [1, 2])

    def test_null_basis(self):
        a = Matrix([[1, 1, -1, 0], [0, 0, 1, -1]])
        basis = integer_null_basis(a)
        assert len(basis) == 2
        for vector in basis:
            assert all(value == 0 for value in a.apply(vector))

    @given(small_int_matrix(max_dim=3, lo=-4, hi=4),
           st.lists(st.integers(-3, 3), min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_constructed_rhs_always_solvable(self, a, x):
        x = x[: a.ncols] + [0] * max(0, a.ncols - len(x))
        rhs = [int(value) for value in a.apply(x)]
        solution = solve_diophantine(a, rhs)
        assert [int(v) for v in a.apply(solution.particular)] == rhs
        for generator in solution.homogeneous:
            assert all(value == 0 for value in a.apply(generator))
