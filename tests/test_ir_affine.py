"""Tests for affine expressions and the shared expression parser."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NonAffineError, ParseError
from repro.ir import (
    AffineExpr,
    BinOp,
    Const,
    IndexValue,
    Load,
    Param,
    bind_indices,
    parse_affine,
    parse_scalar,
    to_affine,
)


class TestAffineAlgebra:
    def test_var_and_constant(self):
        i = AffineExpr.var("i")
        assert i.coeff("i") == 1
        assert i.const == 0
        assert AffineExpr.constant(5).is_constant()

    def test_addition_merges_coefficients(self):
        expr = AffineExpr.var("i") + AffineExpr.var("i") + 3
        assert expr.coeff("i") == 2
        assert expr.const == 3

    def test_zero_coefficients_dropped(self):
        expr = AffineExpr.var("i") - AffineExpr.var("i")
        assert expr.is_constant()
        assert expr.variables() == ()

    def test_subtraction_and_negation(self):
        expr = -(AffineExpr.var("j") - 2)
        assert expr.coeff("j") == -1
        assert expr.const == 2

    def test_scalar_multiplication_and_division(self):
        expr = (AffineExpr.var("u") * 2 + 4) / 6
        assert expr.coeff("u") == Fraction(1, 3)
        assert expr.const == Fraction(2, 3)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            AffineExpr.var("i") / 0

    def test_substitute(self):
        # i -> u + v, j -> -v   applied to  i + 2j - 1.
        expr = AffineExpr.parse("i + 2*j - 1")
        result = expr.substitute({
            "i": AffineExpr.parse("u + v"),
            "j": AffineExpr.parse("-v"),
        })
        assert result == AffineExpr.parse("u - v - 1")

    def test_evaluate(self):
        expr = AffineExpr.parse("2*i + j - 3")
        assert expr.evaluate({"i": 4, "j": 1}) == 6
        assert expr.evaluate_int({"i": 4, "j": 1}) == 6

    def test_evaluate_int_rejects_fraction(self):
        expr = AffineExpr.parse("i/2")
        with pytest.raises(ValueError):
            expr.evaluate_int({"i": 3})

    def test_evaluate_unbound(self):
        with pytest.raises(KeyError):
            AffineExpr.var("i").evaluate({})

    def test_predicates(self):
        assert AffineExpr.var("i").is_single_variable()
        assert not (AffineExpr.var("i") * 2).is_single_variable()
        assert not (AffineExpr.var("i") + 1).is_single_variable()
        assert AffineExpr.parse("i + j").depends_on(["j"])
        assert not AffineExpr.parse("i + j").depends_on(["k"])

    def test_coefficient_vector(self):
        expr = AffineExpr.parse("j - i")
        assert expr.coefficient_vector(["i", "j", "k"]) == (-1, 1, 0)

    def test_is_integral(self):
        assert AffineExpr.parse("2*i + 1").is_integral()
        assert not AffineExpr.parse("i/2").is_integral()

    def test_equality_and_hash(self):
        a = AffineExpr.parse("i + 1")
        b = AffineExpr.var("i") + 1
        assert a == b
        assert hash(a) == hash(b)
        assert AffineExpr.constant(3) == 3

    @given(st.integers(-9, 9), st.integers(-9, 9), st.integers(-9, 9), st.integers(-9, 9))
    @settings(max_examples=40)
    def test_evaluate_linear_property(self, a, b, i, j):
        expr = AffineExpr({"i": a, "j": b}, 7)
        assert expr.evaluate({"i": i, "j": j}) == a * i + b * j + 7


class TestAffineFormatting:
    def test_str_roundtrip(self):
        for text in ["i", "i+2*j-1", "-u-v+3", "1/2*i", "0"]:
            expr = AffineExpr.parse(text)
            assert AffineExpr.parse(str(expr)) == expr

    def test_str_zero(self):
        assert str(AffineExpr.constant(0)) == "0"

    def test_str_signs(self):
        assert str(AffineExpr.parse("-i + 1")) == "-i+1"


class TestExpressionParser:
    def test_implicit_multiplication(self):
        assert parse_affine("2i + 4j") == AffineExpr.parse("2*i + 4*j")

    def test_paper_subscripts(self):
        # Every subscript from Figure 1 and Section 8.2.
        for text in ["j-i", "j+k", "i", "j-i+1", "i-k+b", "j-k+b", "-u-v+w+1"]:
            expr = parse_affine(text)
            assert expr is not None

    def test_parenthesized_division(self):
        expr = parse_affine("(2v - u)/6")
        assert expr.coeff("v") == Fraction(1, 3)
        assert expr.coeff("u") == Fraction(-1, 6)

    def test_array_reference(self):
        node = parse_scalar("A[i, j+k]")
        assert isinstance(node, Load)
        assert node.ref.array == "A"
        assert node.ref.subscripts[1] == AffineExpr.parse("j+k")

    def test_nested_expression(self):
        node = parse_scalar("B[i, j-i] + A[i, j+k] * alpha")
        assert isinstance(node, BinOp)
        assert len(node.references()) == 2

    def test_load_is_not_affine(self):
        with pytest.raises(NonAffineError):
            parse_affine("A[i]")

    def test_variable_product_is_not_affine(self):
        with pytest.raises(NonAffineError):
            parse_affine("i * j")

    def test_division_by_variable_is_not_affine(self):
        with pytest.raises(NonAffineError):
            parse_affine("i / j")

    def test_constant_folding_via_affine(self):
        assert parse_affine("2 * 3 + 1") == 7

    def test_syntax_errors(self):
        with pytest.raises(ParseError):
            parse_scalar("i +")
        with pytest.raises(ParseError):
            parse_scalar("(i")
        with pytest.raises(ParseError):
            parse_scalar("i @ j")
        with pytest.raises(ParseError):
            parse_scalar("i j")

    def test_unary_plus_minus(self):
        assert parse_affine("-i") == AffineExpr.var("i") * -1
        assert parse_affine("+i") == AffineExpr.var("i")
        assert parse_affine("--i") == AffineExpr.var("i")


class TestBindIndices:
    def test_bare_index_becomes_index_value(self):
        node = bind_indices(parse_scalar("j"), ["i", "j"])
        assert isinstance(node, IndexValue)
        assert node.expr == AffineExpr.var("j")

    def test_parameter_stays_param(self):
        node = bind_indices(parse_scalar("alpha"), ["i", "j"])
        assert isinstance(node, Param)

    def test_mixed_expression(self):
        node = bind_indices(parse_scalar("A[i] * j + alpha"), ["i", "j"])
        assert isinstance(node, BinOp)
        product = node.left
        assert isinstance(product, BinOp)
        assert isinstance(product.right, IndexValue)

    def test_affine_subtree_collapsed(self):
        node = bind_indices(parse_scalar("2*i + 3*j - 1"), ["i", "j"])
        assert isinstance(node, IndexValue)
        assert node.expr == AffineExpr.parse("2i + 3j - 1")

    def test_constant_not_collapsed(self):
        node = bind_indices(parse_scalar("5"), ["i"])
        assert isinstance(node, Const)

    def test_substitution_after_binding(self):
        # The Section 3 example: A[2i+4j, i+5j] = j must become
        # A[u, v] = (2v-u)/6 under i,j -> T^{-1}(u,v).
        node = bind_indices(parse_scalar("j"), ["i", "j"])
        rewritten = node.substitute_indices({
            "i": AffineExpr.parse("5/6*u - 2/3*v"),
            "j": AffineExpr.parse("-1/6*u + 1/3*v"),
        })
        assert isinstance(rewritten, IndexValue)
        assert rewritten.expr == AffineExpr.parse("(2v - u)/6")
