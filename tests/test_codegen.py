"""Tests for locality planning, SPMD/ownership generation and code emitters."""

import numpy as np
import pytest

from repro.blas import gemm_program, syr2k_program
from repro.codegen import (
    NodeProgram,
    RefClass,
    compile_program,
    emit_python,
    generate_ownership,
    generate_spmd,
    plan_locality,
    render_node_program,
)
from repro.core import access_normalize
from repro.distributions import Blocked, Replicated, wrapped_column
from repro.errors import CodegenError
from repro.ir import (
    BlockRead,
    IfThen,
    allocate_arrays,
    arrays_equal,
    execute,
    make_program,
)


def normalized_gemm(n=8):
    return access_normalize(gemm_program(n)).transformed


class TestLocalityPlan:
    def test_gemm_classification(self):
        program = normalized_gemm()
        plan = plan_locality(program.nest, program.distributions)
        classes = {
            (str(info.ref), info.is_write): info.ref_class for info in plan.refs
        }
        assert classes[("C[w, u]", True)] == RefClass.LOCAL
        assert classes[("C[w, u]", False)] == RefClass.LOCAL
        assert classes[("B[v, u]", False)] == RefClass.LOCAL
        assert classes[("A[w, v]", False)] == RefClass.COVERED

    def test_gemm_block_read_level(self):
        program = normalized_gemm()
        plan = plan_locality(program.nest, program.distributions)
        assert len(plan.block_reads) == 1
        level, read = plan.block_reads[0]
        assert level == 1  # inside the v loop, outside the w loop
        assert str(read) == "read A[*, v]"

    def test_block_transfers_disabled(self):
        program = normalized_gemm()
        plan = plan_locality(
            program.nest, program.distributions, block_transfers=False
        )
        assert plan.block_reads == ()
        classes = plan.counts()
        assert classes[RefClass.COVERED] == 0
        assert classes[RefClass.CHECK] == 1  # A[w, v]

    def test_untransformed_gemm_all_check(self):
        program = gemm_program(8)
        plan = plan_locality(
            program.nest, program.distributions, block_transfers=False
        )
        assert plan.counts()[RefClass.LOCAL] == 0

    def test_replicated_is_local(self):
        program = make_program(
            loops=[("i", 0, 3)],
            body=["A[i] = A[i] + 1"],
            arrays=[("A", 4)],
            distributions={"A": Replicated()},
        )
        plan = plan_locality(program.nest, program.distributions)
        assert all(info.ref_class == RefClass.LOCAL for info in plan.refs)

    def test_writes_never_covered(self):
        # A write whose distribution subscript is inner-invariant must stay
        # CHECK: block transfers only cover reads.
        program = make_program(
            loops=[("i", 0, 7), ("j", 0, 7)],
            body=["A[j, i+1] = B[j, i] + 1"],
            arrays=[("A", 8, 9), ("B", 8, 8)],
            distributions={"A": wrapped_column(), "B": wrapped_column()},
        )
        plan = plan_locality(program.nest, program.distributions)
        write_info = [info for info in plan.refs if info.is_write][0]
        assert write_info.ref_class == RefClass.CHECK

    def test_constant_distribution_subscript_blockread_level0(self):
        program = make_program(
            loops=[("i", 0, 7), ("j", 0, 7)],
            body=["C[i, j] = B[j, 3] + 1"],
            arrays=[("C", 8, 8), ("B", 8, 8)],
            distributions={"B": wrapped_column()},
        )
        plan = plan_locality(program.nest, program.distributions)
        assert plan.block_reads and plan.block_reads[0][0] == 0

    def test_syr2k_block_reads(self):
        result = access_normalize(
            syr2k_program(16, 4), priority=["j-i", "j-k", "k", "i-k", "i"]
        )
        plan = plan_locality(
            result.transformed.nest, result.transformed.distributions
        )
        # Four band-column transfers per middle iteration (Ab x2, Bb x2).
        assert len(plan.block_reads) == 4
        assert all(level == 1 for level, _ in plan.block_reads)
        # Cb write and read are LOCAL: the j-i subscript is normal.
        classes = plan.counts()
        assert classes[RefClass.LOCAL] == 2
        assert classes[RefClass.COVERED] == 4

    def test_describe(self):
        program = normalized_gemm()
        plan = plan_locality(program.nest, program.distributions)
        text = plan.describe()
        assert "block read" in text
        assert "local" in text


class TestGenerateSPMD:
    def test_prologue_insertion(self):
        node = generate_spmd(normalized_gemm())
        assert isinstance(node, NodeProgram)
        v_loop = node.nest.loops[1]
        assert len(v_loop.prologue) == 1
        assert isinstance(v_loop.prologue[0], BlockRead)

    def test_semantics_unchanged_by_prologues(self):
        program = normalized_gemm(6)
        node = generate_spmd(program)
        base = allocate_arrays(program, seed=7)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(node.program, other)
        assert arrays_equal(base, other)

    def test_bad_schedule(self):
        with pytest.raises(CodegenError):
            generate_spmd(normalized_gemm(), schedule="diagonal")

    def test_index_collision(self):
        program = make_program(
            loops=[("p", 0, 3)], body=["A[p] = 1"], arrays=[("A", 4)]
        )
        with pytest.raises(CodegenError):
            generate_spmd(program)

    def test_description_mentions_schedule(self):
        node = generate_spmd(normalized_gemm(), schedule="blocked")
        assert "blocked" in node.description


class TestOwnership:
    def test_guard_inserted(self):
        node = generate_ownership(gemm_program(8))
        statement = node.nest.body[0]
        assert isinstance(statement, IfThen)
        assert "mod P" in str(statement.conditions[0])
        assert node.guards_per_iteration == 1
        assert node.schedule == "all"

    def test_all_refs_check(self):
        node = generate_ownership(gemm_program(8))
        assert all(info.ref_class == RefClass.CHECK for info in node.plan.refs)

    def test_ownership_execution_is_correct(self):
        # Executing the guarded program once per processor value must write
        # each element exactly once in total.
        from repro.numa import simulate

        program = gemm_program(5)
        node = generate_ownership(program)
        arrays = allocate_arrays(program, seed=9)
        expected = arrays["C"] + arrays["A"] @ arrays["B"]
        simulate(node, processors=3, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["C"], expected, atol=1e-9)

    def test_blocked_lhs_rejected(self):
        program = make_program(
            loops=[("i", 0, 3)],
            body=["A[i] = 1"],
            arrays=[("A", 4)],
            distributions={"A": Blocked(0)},
        )
        with pytest.raises(CodegenError):
            generate_ownership(program)


class TestPseudoC:
    def test_paper_figure_gemm(self):
        node = generate_spmd(normalized_gemm())
        text = render_node_program(node)
        assert "step P" in text
        assert "read A[*, v];" in text
        assert "C[w, u] = C[w, u] + A[w, v] * B[v, u]" in text

    def test_blocked_schedule_text(self):
        node = generate_spmd(normalized_gemm(), schedule="blocked")
        text = render_node_program(node)
        assert "p*S" in text

    def test_ownership_text(self):
        node = generate_ownership(gemm_program(8))
        text = render_node_program(node)
        assert "if (j) mod P == p" in text


class TestPythonCodegen:
    def test_gemm_matches_interpreter(self):
        program = gemm_program(6)
        runner = compile_program(program)
        via_interp = allocate_arrays(program, seed=1)
        via_codegen = {k: v.copy() for k, v in via_interp.items()}
        execute(program, via_interp)
        runner(via_codegen)
        assert arrays_equal(via_interp, via_codegen)

    def test_transformed_program_with_fractions(self):
        # Section 3 scaling example: subscripts like (2v-u)/6 must execute
        # exactly through the generated integer arithmetic.
        from repro.core import apply_transformation
        from repro.linalg import Matrix

        program = make_program(
            loops=[("i", 1, 3), ("j", 1, 3)],
            body=["A[2i + 4j, i + 5j] = j"],
            arrays=[("A", 20, 20)],
        )
        result = apply_transformation(program.nest, Matrix([[2, 4], [1, 5]]))
        transformed = program.with_nest(result.nest)
        via_interp = allocate_arrays(program, init="zeros")
        via_codegen = {k: v.copy() for k, v in via_interp.items()}
        execute(program, via_interp)
        compile_program(transformed)(via_codegen)
        assert arrays_equal(via_interp, via_codegen)

    def test_source_is_exposed(self):
        runner = compile_program(gemm_program(4))
        assert "def run(arrays, params):" in runner.source

    def test_max_min_bounds(self):
        program = make_program(
            loops=[("i", 0, 9), ("j", ["i-2", "0"], ["i+2", "9"])],
            body=["A[i, j] = i + j"],
            arrays=[("A", 10, 10)],
        )
        via_interp = allocate_arrays(program, init="zeros")
        via_codegen = {k: v.copy() for k, v in via_interp.items()}
        execute(program, via_interp)
        compile_program(program)(via_codegen)
        assert arrays_equal(via_interp, via_codegen)

    def test_guards_and_blockreads_emitted(self):
        node = generate_ownership(gemm_program(4))
        source = emit_python(node.program)
        assert "P = params['P']" in source
        assert "if " in source and " % " in source
        spmd = generate_spmd(normalized_gemm(4))
        source2 = emit_python(spmd.program)
        assert "read A block" in source2

    def test_guarded_program_executes(self):
        node = generate_ownership(gemm_program(5))
        program = node.program
        arrays = allocate_arrays(program, seed=3)
        expected = arrays["C"] + arrays["A"] @ arrays["B"]
        runner = compile_program(program)
        # Run once per processor value, as the SPMD model does.
        for proc in range(3):
            runner(arrays, dict(program.params, N=5, P=3, p=proc))
        np.testing.assert_allclose(arrays["C"], expected, atol=1e-9)
