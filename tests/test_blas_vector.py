"""Tests for the BLAS workloads and the Section 9 vectorization application."""

import numpy as np
import pytest

from repro.blas import (
    PAPER_PRIORITY,
    band_to_dense,
    gemm_program,
    gemm_reference,
    syr2k_program,
    syr2k_reference,
    syrk_program,
    syrk_reference,
)
from repro.core import access_normalize
from repro.ir import allocate_arrays, execute, validate_program
from repro.vector import (
    VectorCostModel,
    dimension_strides,
    reference_stride,
    stride_report,
    vector_loop_cycles,
)


class TestGEMMWorkload:
    def test_program_validates(self):
        validate_program(gemm_program(8))

    def test_reference_semantics(self):
        program = gemm_program(7)
        arrays = allocate_arrays(program, seed=40)
        expected = gemm_reference(arrays)
        execute(program, arrays)
        np.testing.assert_allclose(arrays["C"], expected, atol=1e-9)


class TestSYR2KWorkload:
    def test_program_validates(self):
        validate_program(syr2k_program(12, 4))

    def test_band_to_dense_roundtrip(self):
        program = syr2k_program(9, 3)
        arrays = allocate_arrays(program, seed=41)
        dense = band_to_dense(arrays["Ab"], 3)
        # Entries outside the band are zero; inside they match storage.
        assert dense[0, 5] == 0.0
        assert dense[4, 5] == arrays["Ab"][4, 5 - 4 + 2]

    def test_reference_semantics(self):
        n, b = 11, 3
        program = syr2k_program(n, b)
        arrays = allocate_arrays(program, seed=42)
        expected = syr2k_reference(arrays, n, b)
        execute(program, arrays)
        np.testing.assert_allclose(arrays["Cb"], expected, atol=1e-9)

    def test_symmetry_of_dense_update(self):
        # C is symmetric, so computing from the upper-triangle band must
        # equal the transposed computation.
        n, b = 10, 3
        program = syr2k_program(n, b)
        arrays = allocate_arrays(program, seed=43)
        dense_a = band_to_dense(arrays["Ab"], b)
        dense_b = band_to_dense(arrays["Bb"], b)
        update = dense_a.T @ dense_b + dense_b.T @ dense_a
        np.testing.assert_allclose(update, update.T, atol=1e-12)

    def test_paper_priority_transformation(self):
        result = access_normalize(syr2k_program(12, 4), priority=PAPER_PRIORITY)
        from repro.linalg import Matrix

        assert result.matrix == Matrix([[-1, 1, 0], [0, -1, 1], [0, 0, 1]])


class TestSYRKWorkload:
    def test_program_validates(self):
        validate_program(syrk_program(8))

    def test_reference_semantics(self):
        program = syrk_program(8)
        arrays = allocate_arrays(program, seed=44)
        expected = syrk_reference(arrays)
        execute(program, arrays)
        np.testing.assert_allclose(np.triu(arrays["C"]), np.triu(expected), atol=1e-9)

    def test_normalization_localizes_c(self):
        from repro.codegen import RefClass, plan_locality

        result = access_normalize(syrk_program(8))
        plan = plan_locality(
            result.transformed.nest, result.transformed.distributions
        )
        write_infos = [info for info in plan.refs if info.is_write]
        assert write_infos[0].ref_class == RefClass.LOCAL

    def test_parallel_execution_correct(self):
        from repro.codegen import generate_spmd
        from repro.numa import simulate

        program = syrk_program(9)
        node = generate_spmd(access_normalize(program).transformed)
        arrays = allocate_arrays(program, seed=45)
        expected = syrk_reference(arrays)
        simulate(node, processors=4, arrays=arrays, mode="execute")
        np.testing.assert_allclose(
            np.triu(arrays["C"]), np.triu(expected), atol=1e-9
        )


class TestVectorization:
    def test_dimension_strides_column_major(self):
        assert dimension_strides((10, 4)) == [1, 10]
        assert dimension_strides((3, 5, 7)) == [1, 3, 15]

    def test_reference_stride(self):
        from repro.ir import ArrayRef

        ref = ArrayRef.make("A", "i", "j+k")
        assert reference_stride(ref, "k", (10, 10)) == 10
        assert reference_stride(ref, "i", (10, 10)) == 1
        assert reference_stride(ref, "m", (10, 10)) == 0

    def test_figure1_strides_improve_after_normalization(self):
        """Section 9: normalization yields unit-stride inner access."""
        from repro.ir import make_program
        from repro.distributions import wrapped_column

        program = make_program(
            loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
            body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
            arrays=[("B", "N1", "b"), ("A", "N1", "N1+b+N2")],
            distributions={"A": wrapped_column(), "B": wrapped_column()},
            params={"N1": 8, "N2": 6, "b": 3},
            name="figure1",
        )
        before = {str(info.ref): info.stride for info in stride_report(program)}
        # Original: A[i, j+k] strides by a whole column per k step.
        assert before["A[i, j+k]"] == 8
        result = access_normalize(program)
        after = stride_report(result.transformed)
        # Transformed: every reference is unit-stride in w.
        assert all(info.stride == 1 for info in after)

    def test_vector_cost_prefers_unit_stride(self):
        model = VectorCostModel()
        unit = model.stream_cycles(256, 1)
        strided = model.stream_cycles(256, 400)
        gathered = model.stream_cycles(256, None)
        assert unit < strided < gathered

    def test_vector_cost_zero_elements(self):
        assert VectorCostModel().stream_cycles(0, 1) == 0.0

    def test_vector_loop_cycles_improvement(self):
        from repro.distributions import wrapped_column
        from repro.ir import make_program

        program = make_program(
            loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
            body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
            arrays=[("B", "N1", "b"), ("A", "N1", "N1+b+N2")],
            distributions={"A": wrapped_column(), "B": wrapped_column()},
            params={"N1": 64, "N2": 64, "b": 8},
        )
        result = access_normalize(program)
        before = vector_loop_cycles(program, 64)
        after = vector_loop_cycles(result.transformed, 64)
        assert after < before
