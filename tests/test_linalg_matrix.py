"""Unit tests for the exact rational matrix class."""

from fractions import Fraction

import pytest

from repro.errors import NotInvertibleError, ShapeError
from repro.linalg import Matrix


class TestConstruction:
    def test_shape(self):
        m = Matrix([[1, 2, 3], [4, 5, 6]])
        assert m.shape == (2, 3)

    def test_ragged_rows_rejected(self):
        with pytest.raises(ShapeError):
            Matrix([[1, 2], [3]])

    def test_entries_coerced_to_fractions(self):
        m = Matrix([[1, Fraction(1, 2)]])
        assert m[0, 0] == Fraction(1)
        assert m[0, 1] == Fraction(1, 2)

    def test_float_entries_rejected(self):
        with pytest.raises(TypeError):
            Matrix([[1.5]])

    def test_identity(self):
        assert Matrix.identity(3) == Matrix([[1, 0, 0], [0, 1, 0], [0, 0, 1]])

    def test_zeros(self):
        assert Matrix.zeros(2, 3).is_zero()

    def test_from_cols(self):
        m = Matrix.from_cols([[1, 2], [3, 4]])
        assert m == Matrix([[1, 3], [2, 4]])

    def test_column_and_row_vectors(self):
        assert Matrix.column([1, 2]).shape == (2, 1)
        assert Matrix.row([1, 2]).shape == (1, 2)

    def test_empty_matrix(self):
        m = Matrix([])
        assert m.shape == (0, 0)
        assert m.rank() == 0


class TestArithmetic:
    def test_add_sub(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[5, 6], [7, 8]])
        assert a + b == Matrix([[6, 8], [10, 12]])
        assert b - a == Matrix([[4, 4], [4, 4]])

    def test_add_shape_mismatch(self):
        with pytest.raises(ShapeError):
            Matrix([[1]]) + Matrix([[1, 2]])

    def test_neg(self):
        assert -Matrix([[1, -2]]) == Matrix([[-1, 2]])

    def test_scale(self):
        assert Matrix([[2, 4]]).scale(Fraction(1, 2)) == Matrix([[1, 2]])

    def test_matmul(self):
        a = Matrix([[1, 2], [3, 4]])
        b = Matrix([[0, 1], [1, 0]])
        assert a @ b == Matrix([[2, 1], [4, 3]])

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ShapeError):
            Matrix([[1, 2]]) @ Matrix([[1, 2]])

    def test_apply(self):
        m = Matrix([[2, 4], [1, 5]])
        assert m.apply([1, 1]) == [6, 6]

    def test_apply_length_mismatch(self):
        with pytest.raises(ShapeError):
            Matrix([[1, 2]]).apply([1, 2, 3])


class TestStructure:
    def test_transpose(self):
        assert Matrix([[1, 2, 3]]).transpose() == Matrix([[1], [2], [3]])

    def test_hstack_vstack(self):
        a = Matrix([[1], [2]])
        b = Matrix([[3], [4]])
        assert a.hstack(b) == Matrix([[1, 3], [2, 4]])
        assert a.vstack(b) == Matrix([[1], [2], [3], [4]])

    def test_select_rows_cols(self):
        m = Matrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m.select_rows([2, 0]) == Matrix([[7, 8, 9], [1, 2, 3]])
        assert m.select_cols([1]) == Matrix([[2], [5], [8]])

    def test_drop_col(self):
        m = Matrix([[1, 2, 3]])
        assert m.drop_col(1) == Matrix([[1, 3]])

    def test_row_col_access(self):
        m = Matrix([[1, 2], [3, 4]])
        assert m.row_at(1) == (3, 4)
        assert m.col_at(0) == (1, 3)


class TestElimination:
    def test_rank_full(self):
        assert Matrix([[1, 0], [0, 1]]).rank() == 2

    def test_rank_deficient(self):
        assert Matrix([[1, 2], [2, 4]]).rank() == 1

    def test_paper_rank_example(self):
        # Section 5: rows 1 and 3 are independent, row 2 = 2 * row 1.
        x = Matrix([[1, 1, -1, 0], [2, 2, -2, 0], [0, 0, 1, -1]])
        assert x.rank() == 2
        assert x.independent_row_indices() == [0, 2]

    def test_det(self):
        assert Matrix([[2, 4], [1, 5]]).det() == 6
        assert Matrix([[1, 2], [2, 4]]).det() == 0

    def test_det_sign_with_swap(self):
        assert Matrix([[0, 1], [1, 0]]).det() == -1

    def test_det_non_square(self):
        with pytest.raises(ShapeError):
            Matrix([[1, 2]]).det()

    def test_inverse(self):
        m = Matrix([[2, 4], [1, 5]])
        assert m @ m.inverse() == Matrix.identity(2)

    def test_inverse_singular(self):
        with pytest.raises(NotInvertibleError):
            Matrix([[1, 2], [2, 4]]).inverse()

    def test_inverse_non_square(self):
        with pytest.raises(NotInvertibleError):
            Matrix([[1, 2]]).inverse()

    def test_solve(self):
        m = Matrix([[2, 0], [0, 4]])
        rhs = Matrix.column([6, 8])
        assert m.solve(rhs) == Matrix.column([3, 2])

    def test_null_space(self):
        m = Matrix([[1, 1, -1, 0], [2, 2, -2, 0], [0, 0, 1, -1]])
        basis = m.null_space()
        assert len(basis) == 2
        for vector in basis:
            assert all(value == 0 for value in m.apply(vector))

    def test_paper_transformation_matrix_invertible(self):
        # Section 4: the SYR2K-like data access matrix is invertible.
        x = Matrix([[-1, 1, 0], [0, 1, 1], [1, 0, 0]])
        assert x.is_invertible()

    def test_unimodular(self):
        assert Matrix([[0, 1], [1, 0]]).is_unimodular()
        assert not Matrix([[2, 0], [0, 1]]).is_unimodular()
        # Section 3 scaling example is invertible but NOT unimodular.
        scaling = Matrix([[2, 4], [1, 5]])
        assert scaling.is_invertible()
        assert not scaling.is_unimodular()

    def test_is_permutation(self):
        assert Matrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]]).is_permutation()
        assert not Matrix([[1, 1], [0, 1]]).is_permutation()

    def test_integer_predicates(self):
        assert Matrix([[1, 2]]).is_integer()
        assert not Matrix([[Fraction(1, 2)]]).is_integer()
        assert Matrix([[1, 2]]).to_int_rows() == [[1, 2]]
        with pytest.raises(ValueError):
            Matrix([[Fraction(1, 2)]]).to_int_rows()


class TestDunder:
    def test_eq_and_hash(self):
        a = Matrix([[1, 2]])
        b = Matrix([[1, 2]])
        assert a == b
        assert hash(a) == hash(b)
        assert a != Matrix([[2, 1]])

    def test_repr_roundtrip_style(self):
        m = Matrix([[1, Fraction(1, 2)]])
        assert "1/2" in repr(m)

    def test_pretty(self):
        text = Matrix([[1, 22], [333, 4]]).pretty()
        assert text.count("\n") == 1
        assert "333" in text
