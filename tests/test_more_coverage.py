"""Additional coverage: simulator corner cases, rectangular normal forms,
multi-statement bodies, and odd code paths."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import RefClass, generate_spmd, plan_locality, render_node_program
from repro.core import access_normalize
from repro.distributions import Block2D, Wrapped, wrapped_column
from repro.errors import ShapeError
from repro.ir import allocate_arrays, arrays_equal, execute, make_program
from repro.linalg import Matrix, column_hnf, hnf_diagonal, row_hnf, solve_diophantine
from repro.numa import simulate


class TestMultiStatementBodies:
    def make(self, n=8):
        return make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 0, "N-1")],
            body=[
                "C[i, j] = C[i, j] + A[i, k] * B[k, j]",
                "D[i, j] = D[i, j] + A[i, k]",
            ],
            arrays=[
                ("C", "N", "N"), ("D", "N", "N"),
                ("A", "N", "N"), ("B", "N", "N"),
            ],
            distributions={
                "A": wrapped_column(), "B": wrapped_column(),
                "C": wrapped_column(), "D": wrapped_column(),
            },
            params={"N": n},
            name="dual",
        )

    def test_normalization_handles_two_statements(self):
        program = self.make()
        result = access_normalize(program)
        base = allocate_arrays(program, seed=100)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        assert arrays_equal(base, other)

    def test_analytic_summary_counts_both_statements(self):
        program = self.make(6)
        node = generate_spmd(access_normalize(program).transformed)
        outcome = simulate(node, processors=2)
        assert outcome.totals.statements == 2 * 6 ** 3
        # 4 refs in stmt 1 + 3 refs in stmt 2.
        assert outcome.totals.local + outcome.totals.remote == 7 * 6 ** 3

    def test_parallel_execution_two_statements(self):
        program = self.make(6)
        node = generate_spmd(access_normalize(program).transformed)
        arrays = allocate_arrays(program, seed=101)
        expected_c = arrays["C"] + arrays["A"] @ arrays["B"]
        simulate(node, processors=3, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["C"], expected_c, atol=1e-9)
        # D's accumulation is easiest checked against sequential execution.
        base = allocate_arrays(program, seed=101)
        execute(program, base)
        np.testing.assert_allclose(arrays["D"], base["D"], atol=1e-9)


class TestDepthOneNest:
    def test_simulate_vector_scale(self):
        program = make_program(
            loops=[("i", 0, "N-1")],
            body=["X[i] = X[i] * 2"],
            arrays=[("X", "N")],
            distributions={"X": Wrapped(0)},
            params={"N": 10},
        )
        node = generate_spmd(program, block_transfers=False)
        outcome = simulate(node, processors=3)
        assert outcome.totals.iterations == 10
        assert outcome.totals.remote == 0  # i === p (mod P) matches owner

    def test_depth_one_execute(self):
        program = make_program(
            loops=[("i", 0, 9)],
            body=["X[i] = 3*i"],
            arrays=[("X", 10)],
            distributions={"X": Wrapped(0)},
        )
        node = generate_spmd(program)
        arrays = allocate_arrays(program, init="zeros")
        simulate(node, processors=4, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["X"], np.arange(10) * 3)


class TestRectangularNormalForms:
    @given(st.integers(1, 3), st.integers(1, 4),
           st.data())
    @settings(max_examples=40, deadline=None)
    def test_wide_and_tall_hnf(self, nrows, ncols, data):
        rows = data.draw(
            st.lists(
                st.lists(st.integers(-5, 5), min_size=ncols, max_size=ncols),
                min_size=nrows,
                max_size=nrows,
            )
        )
        matrix = Matrix(rows)
        h, u = column_hnf(matrix)
        assert matrix @ u == h
        assert abs(u.det()) == 1
        hr, ur = row_hnf(matrix)
        assert ur @ matrix == hr

    def test_hnf_diagonal_rectangular(self):
        diag = hnf_diagonal(Matrix([[2, 4, 6], [0, 4, 8]]))
        assert len(diag) == 2
        assert all(d >= 0 for d in diag)


class TestDiophantineExtras:
    def test_sample_shape_error(self):
        solution = solve_diophantine(Matrix([[1, 1]]), [3])
        with pytest.raises(ShapeError):
            solution.sample([1, 2, 3])

    def test_tall_inconsistent(self):
        from repro.errors import NoIntegerSolutionError

        with pytest.raises(NoIntegerSolutionError):
            solve_diophantine(Matrix([[1], [1], [1]]), [1, 1, 2])


class TestAutodistReplicated:
    def test_allow_replicated_includes_none(self):
        from repro.core.autodist import evaluate_assignment
        from repro.blas import gemm_program
        from repro.numa import butterfly_gp1000

        program = gemm_program(6)
        candidate = evaluate_assignment(
            program,
            {"A": None, "B": None, "C": Wrapped(1)},
            processors=2,
            machine=butterfly_gp1000(),
        )
        assert "replicated" in candidate.describe()
        assert candidate.time_us > 0


class TestRenderingExtras:
    def test_all_schedule_rendering(self):
        from repro.codegen import generate_ownership
        from repro.blas import gemm_program

        node = generate_ownership(gemm_program(6))
        text = render_node_program(node)
        assert "for i = 0, N-1" in text

    def test_block2d_plan_reason(self):
        program = make_program(
            loops=[("i", 0, 3), ("j", 0, 3)],
            body=["A[i, j] = 1"],
            arrays=[("A", 4, 4)],
            distributions={"A": Block2D(2, 2)},
        )
        plan = plan_locality(program.nest, program.distributions)
        assert plan.refs[0].ref_class == RefClass.CHECK
        assert "multi-dimensional" in plan.refs[0].reason

    def test_rank_mismatch_reason(self):
        # Distribution dimension beyond the reference rank.
        program = make_program(
            loops=[("i", 0, 3)],
            body=["A[i] = 1"],
            arrays=[("A", 4)],
            distributions={"A": Wrapped(1)},
        )
        plan = plan_locality(program.nest, program.distributions)
        assert "rank mismatch" in plan.refs[0].reason


class TestAssumptionDefaults:
    def test_program_assumptions_used_by_default(self):
        from repro.blas import syr2k_program
        from repro.ir import Program

        base = syr2k_program(40, 5)
        with_facts = Program(
            nest=base.nest,
            arrays=base.arrays,
            distributions=base.distributions,
            params=base.params,
            name=base.name,
            assumptions=("N >= 2*b", "b >= 2"),
        )
        result = access_normalize(
            with_facts, priority=["j-i", "j-k", "k", "i-k", "i"]
        )
        assert len(result.transformed.nest.loops[0].upper) == 1
