"""Tests for the extension passes: direction-vector legality, outer-loop
synchronization accounting, and loop-step prenormalization."""

from fractions import Fraction

import pytest

from repro.core import access_normalize, apply_transformation
from repro.core.directions import (
    Interval,
    distance_to_direction,
    is_legal_direction_transformation,
    legal_basis_directions,
    row_direction_interval,
)
from repro.core.prenormalize import normalize_program_steps, normalize_steps
from repro.distributions import wrapped_column
from repro.errors import DependenceError, IRError
from repro.ir import allocate_arrays, arrays_equal, execute, make_nest, make_program
from repro.linalg import Matrix


class TestDirectionIntervals:
    def test_distance_to_direction(self):
        assert distance_to_direction((0, 0, 1)) == ("=", "=", "<")
        assert distance_to_direction((2, -1)) == ("<", ">")

    def test_equals_only(self):
        interval = row_direction_interval([1, -2], ("=", "="))
        assert interval.is_zero

    def test_positive_component(self):
        interval = row_direction_interval([1, 0], ("<", "*"))
        assert interval.lo == 1
        assert interval.hi is None
        assert interval.strictly_positive

    def test_negative_coefficient_on_positive_class(self):
        interval = row_direction_interval([-2, 0], ("<", "="))
        assert interval.lo is None
        assert interval.hi == -2
        assert interval.non_positive

    def test_star_dominates(self):
        interval = row_direction_interval([1, 1], ("<", "*"))
        assert interval.lo is None
        assert interval.hi is None

    def test_star_with_zero_coefficient_ignored(self):
        interval = row_direction_interval([1, 0], ("<", "*"))
        assert interval.non_negative

    def test_greater_class(self):
        interval = row_direction_interval([0, -3], ("=", ">"))
        assert interval.lo == 3
        assert interval.strictly_positive

    def test_invalid_inputs(self):
        with pytest.raises(DependenceError):
            row_direction_interval([1], ("<", "="))
        with pytest.raises(DependenceError):
            row_direction_interval([1], ("?",))


class TestDirectionalLegalBasis:
    def test_row_kept_and_dep_carried(self):
        basis = Matrix([[1, 0], [0, 1]])
        result = legal_basis_directions(basis, [("<", "*")])
        # Row (1,0): interval [1, inf) -> kept, dependence carried.
        # Row (0,1) then faces no dependences.
        assert result.basis == basis
        assert result.remaining == ()

    def test_mixed_row_dropped(self):
        basis = Matrix([[0, 1]])
        result = legal_basis_directions(basis, [("<", "*")])
        assert result.basis.nrows == 0
        assert result.remaining == (("<", "*"),)

    def test_row_negated(self):
        basis = Matrix([[-1, 0]])
        result = legal_basis_directions(basis, [("<", "=")])
        assert result.basis == Matrix([[1, 0]])
        assert result.row_map == ((0, True),)
        assert result.remaining == ()

    def test_zero_interval_keeps_dep(self):
        basis = Matrix([[0, 1]])
        result = legal_basis_directions(basis, [("<", "=")])
        assert result.basis == Matrix([[0, 1]])
        assert result.remaining == (("<", "="),)


class TestDirectionalFullLegality:
    def test_identity_always_legal_for_lex_positive(self):
        assert is_legal_direction_transformation(
            Matrix.identity(3), [("=", "<", "*"), ("<", "*", "*")]
        )

    def test_reversal_of_carrying_loop_illegal(self):
        assert not is_legal_direction_transformation(
            Matrix([[-1, 0], [0, 1]]), [("<", "=")]
        )

    def test_interchange_with_star_illegal(self):
        # Moving the '*' loop outward cannot be proven legal.
        assert not is_legal_direction_transformation(
            Matrix([[0, 1], [1, 0]]), [("<", "*")]
        )

    def test_all_equal_needs_no_carrier(self):
        assert is_legal_direction_transformation(
            Matrix([[0, 1], [1, 0]]), [("=", "=")]
        )

    def test_uncarried_rejected(self):
        # (=, <) with a transformation whose rows are orthogonal to it in
        # row 0 and could be zero in row 1? Use a 1-row check: matrix rows
        # never strictly positive -> rejected.
        assert not is_legal_direction_transformation(
            Matrix([[1, 0], [0, 1]])
            .select_rows([0])
            .vstack(Matrix([[1, 0]])),  # rank-deficient: rows (1,0),(1,0)
            [("=", "<")],
        )


class TestPartialNormalizationWithDirections:
    def test_transpose_like_gets_partial_normalization(self):
        # A[i,j] = A[j,i] has a non-uniform ('*','*') dependence, but with
        # an extra loop dimension t carrying nothing, subscripts in t can
        # still be normalized when provably legal.
        program = make_program(
            loops=[("t", 0, "T-1"), ("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["A[i, j] = A[j, i] + B[j, t]"],
            arrays=[("A", "N", "N"), ("B", "N", "T")],
            distributions={"A": wrapped_column(), "B": wrapped_column()},
            params={"N": 5, "T": 4},
            name="transpose-stream",
        )
        result = access_normalize(program)
        # The dependence is ('=','*','*') (t-invariant), so no row touching
        # i or j can be kept outermost... but row t could head the nest only
        # if it carries nothing and all deps stay legal below.  Whatever the
        # outcome, it must be semantically correct:
        base = allocate_arrays(program, seed=5)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        assert arrays_equal(base, other)

    def test_pure_transpose_still_identity(self):
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["A[i, j] = A[j, i] + 1"],
            arrays=[("A", "N", "N")],
            distributions={"A": wrapped_column()},
            params={"N": 5},
        )
        result = access_normalize(program)
        assert result.matrix == Matrix.identity(2)


class TestSyncAccounting:
    def make_outer_carried_program(self):
        # A[i] = A[i-1] + B[i, j]: the dependence (1, 0) is carried by the
        # outermost loop; distributing it requires synchronization.
        return make_program(
            loops=[("i", 1, "N-1"), ("j", 0, "N-1")],
            body=["A[i] = A[i-1] + B[i, j]"],
            arrays=[("A", "N"), ("B", "N", "N")],
            distributions={"B": wrapped_column()},
            params={"N": 12},
            name="recurrence",
        )

    def test_outer_carried_count(self):
        program = self.make_outer_carried_program()
        result = access_normalize(program)
        assert result.outer_carried_count >= 1

    def test_sync_events_charged(self):
        from repro.codegen import generate_spmd
        from repro.numa import butterfly_gp1000, simulate

        program = self.make_outer_carried_program()
        result = access_normalize(program)
        node = generate_spmd(
            result.transformed, sync_events=result.outer_carried_count
        )
        assert node.sync_per_outer_iteration >= 1
        outcome = simulate(node, processors=3)
        assert outcome.totals.syncs > 0
        quiet = simulate(
            generate_spmd(result.transformed), processors=3
        )
        assert outcome.total_time_us > quiet.total_time_us

    def test_paper_workloads_need_no_sync(self):
        from repro.blas import gemm_program, syr2k_program

        for program in (gemm_program(8), syr2k_program(10, 3)):
            result = access_normalize(program)
            assert result.outer_carried_count == 0

    def test_transformed_dependences_property(self):
        from repro.blas import gemm_program

        result = access_normalize(gemm_program(8))
        assert result.transformed_dependences == Matrix([[0], [1], [0]])


class TestStepNormalization:
    def test_simple_strided_loop(self):
        nest = make_nest(loops=[("i", 2, 20, 3)], body=["A[i] = i"])
        normalized, bindings = normalize_steps(nest)
        loop = normalized.loops[0]
        assert loop.step == 1
        assert loop.lower_value({}) == 0
        assert loop.upper_value({}) == 6  # (20-2)//3
        assert bindings["i"].coeff("i") == 3
        assert bindings["i"].const == 2

    def test_semantics_preserved(self):
        program = make_program(
            loops=[("i", 1, 18, 2), ("j", "i", "i+4", 1)],
            body=["A[i, j] = 2*i + j"],
            arrays=[("A", 24, 30)],
            name="strided",
        )
        normalized = normalize_program_steps(program)
        base = allocate_arrays(program, init="zeros")
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(normalized, other)
        assert arrays_equal(base, other)

    def test_nested_strides(self):
        program = make_program(
            loops=[("i", 0, 11, 4), ("j", "i", "i+8", 2)],
            body=["A[i, j] = i + j"],
            arrays=[("A", 16, 24)],
        )
        normalized = normalize_program_steps(program)
        base = allocate_arrays(program, init="zeros")
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(normalized, other)
        assert arrays_equal(base, other)

    def test_step_normalized_nest_is_transformable(self):
        program = make_program(
            loops=[("i", 0, 15, 2), ("j", 0, 7)],
            body=["A[i, j] = A[i, j] + 1"],
            arrays=[("A", 16, 8)],
        )
        normalized = normalize_program_steps(program)
        result = apply_transformation(
            normalized.nest, Matrix([[0, 1], [1, 0]])
        )
        base = allocate_arrays(program, seed=3)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(normalized.with_nest(result.nest), other)
        assert arrays_equal(base, other)

    def test_max_lower_with_stride_rejected(self):
        nest = make_nest(
            loops=[("i", 0, 9), ("j", ["i", "3"], 20, 2)],
            body=["A[i, j] = 1"],
        )
        with pytest.raises(IRError):
            normalize_steps(nest)

    def test_aligned_loop_rejected(self):
        from repro.ir import Loop, LoopNest, parse_assignment

        nest = LoopNest(
            (Loop.make("i", 0, 10, step=2, align=0),),
            (parse_assignment("A[i] = 1", ["i"]),),
        )
        with pytest.raises(IRError):
            normalize_steps(nest)

    def test_unit_loops_untouched_iteration_count(self):
        program = make_program(
            loops=[("i", 0, 5), ("j", "i", 9)],
            body=["A[i, j] = 1"],
            arrays=[("A", 6, 10)],
        )
        normalized = normalize_program_steps(program)
        assert (
            normalized.nest.iteration_count({})
            == program.nest.iteration_count({})
        )
