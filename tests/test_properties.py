"""Cross-cutting property tests (hypothesis).

These tie the whole stack together: random programs and random
transformations must preserve semantics, generated Python must agree with
the interpreter, and the simulator's counts must obey conservation laws.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import compile_program, generate_spmd
from repro.core import access_normalize, apply_transformation
from repro.core.prenormalize import normalize_program_steps
from repro.distributions import Blocked, Wrapped
from repro.ir import (
    allocate_arrays,
    arrays_equal,
    execute,
    make_program,
)
from repro.linalg import Matrix
from repro.numa import butterfly_gp1000, simulate


def invertible_3x3():
    entry = st.integers(-2, 2)
    return st.lists(
        st.lists(entry, min_size=3, max_size=3), min_size=3, max_size=3
    ).map(Matrix).filter(lambda m: m.det() != 0)


def small_subscript_pair():
    """Random affine subscripts (c1*i + c2*j + offset) kept inside bounds."""
    coeff = st.integers(0, 2)
    return st.tuples(coeff, coeff, st.integers(0, 3))


def random_program(draw_style):
    (a1, b1, c1), (a2, b2, c2), width, height = draw_style
    extent0 = a1 * (width - 1) + b1 * (height - 1) + c1 + 1
    extent1 = a2 * (width - 1) + b2 * (height - 1) + c2 + 1
    return make_program(
        loops=[("i", 0, width - 1), ("j", 0, height - 1)],
        body=[
            f"Acc[{a1}*i + {b1}*j + {c1}, {a2}*i + {b2}*j + {c2}]"
            f" = Acc[{a1}*i + {b1}*j + {c1}, {a2}*i + {b2}*j + {c2}] + i + 2*j"
        ],
        arrays=[("Acc", extent0, extent1)],
        name="random",
    )


class TestTransformSemanticsProperty:
    @given(
        invertible_3x3(),
        st.integers(2, 4),
        st.integers(2, 4),
        st.integers(2, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_depth3_bijection(self, t, a, b, c):
        program = make_program(
            loops=[("i", 0, a), ("j", 0, b), ("k", "i", c + 4)],
            body=["S[0] = S[0] + i + 2*j + 4*k"],
            arrays=[("S", 1)],
        )
        result = apply_transformation(program.nest, t)
        original = {
            (i, j, k)
            for i in range(a + 1)
            for j in range(b + 1)
            for k in range(i, c + 5)
        }
        seen = []
        for env in result.nest.iterate({}):
            point = tuple(env[name] for name in result.new_indices)
            seen.append(result.unmap_point(point))
        assert len(seen) == len(original)
        assert set(seen) == original

    @given(
        st.tuples(
            small_subscript_pair(),
            small_subscript_pair(),
            st.integers(2, 5),
            st.integers(2, 5),
        ),
        st.sampled_from(
            [
                Matrix([[0, 1], [1, 0]]),
                Matrix([[1, 1], [0, 1]]),
                Matrix([[2, 0], [0, 1]]),
                Matrix([[1, 0], [1, -1]]),
            ]
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_accumulation_semantics(self, style, t):
        program = random_program(style)
        result = apply_transformation(program.nest, t)
        base = allocate_arrays(program, init="index")
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(program.with_nest(result.nest), other)
        assert arrays_equal(base, other)


class TestPycodegenProperty:
    @given(
        st.tuples(
            small_subscript_pair(),
            small_subscript_pair(),
            st.integers(2, 5),
            st.integers(2, 5),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_generated_python_matches_interpreter(self, style):
        program = random_program(style)
        via_interp = allocate_arrays(program, seed=6)
        via_codegen = {k: v.copy() for k, v in via_interp.items()}
        execute(program, via_interp)
        compile_program(program)(via_codegen)
        assert arrays_equal(via_interp, via_codegen)

    @given(
        st.tuples(
            small_subscript_pair(),
            small_subscript_pair(),
            st.integers(2, 4),
            st.integers(2, 4),
        ),
        st.sampled_from(
            [Matrix([[0, 1], [1, 0]]), Matrix([[2, 0], [0, 1]])]
        ),
    )
    @settings(max_examples=15, deadline=None)
    def test_generated_python_after_transformation(self, style, t):
        program = random_program(style)
        result = apply_transformation(program.nest, t)
        transformed = program.with_nest(result.nest)
        via_interp = allocate_arrays(program, seed=7)
        via_codegen = {k: v.copy() for k, v in via_interp.items()}
        execute(program, via_interp)
        compile_program(transformed)(via_codegen)
        assert arrays_equal(via_interp, via_codegen)


class TestSimulatorInvariantsProperty:
    @given(
        st.integers(4, 12),
        st.integers(1, 7),
        st.sampled_from(["wrapped", "blocked"]),
        st.booleans(),
    )
    @settings(max_examples=25, deadline=None)
    def test_conservation_laws(self, n, processors, schedule, blocked_arrays):
        distribution = Blocked(1) if blocked_arrays else Wrapped(1)
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 0, "N-1")],
            body=["C[i, j] = C[i, j] + A[i, k] * B[k, j]"],
            arrays=[("C", "N", "N"), ("A", "N", "N"), ("B", "N", "N")],
            distributions={"A": distribution, "B": distribution, "C": distribution},
            params={"N": n},
            name="gemm-prop",
        )
        result = access_normalize(program)
        node = generate_spmd(
            result.transformed, schedule=schedule, block_transfers=False
        )
        outcome = simulate(node, processors=processors)
        totals = outcome.totals
        # Work conservation: every iteration executed exactly once.
        assert totals.iterations == n ** 3
        assert totals.statements == n ** 3
        # Access conservation: 4 array accesses per iteration.
        assert totals.local + totals.remote == 4 * n ** 3
        # Speedup sanity: no super-linear scaling.
        sequential = simulate(node, processors=1).total_time_us
        assert outcome.speedup(sequential) <= processors + 1e-9

    @given(st.integers(4, 10), st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_execute_matches_account(self, n, processors):
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 0, "N-1")],
            body=["C[i, j] = C[i, j] + A[i, k] * B[k, j]"],
            arrays=[("C", "N", "N"), ("A", "N", "N"), ("B", "N", "N")],
            distributions={"A": Wrapped(1), "B": Wrapped(1), "C": Wrapped(1)},
            params={"N": n},
        )
        node = generate_spmd(access_normalize(program).transformed)
        arrays = allocate_arrays(program, seed=8)
        expected = arrays["C"] + arrays["A"] @ arrays["B"]
        executed = simulate(
            node, processors=processors, arrays=arrays, mode="execute"
        )
        accounted = simulate(node, processors=processors)
        assert executed.totals == accounted.totals
        np.testing.assert_allclose(arrays["C"], expected, atol=1e-9)


class TestNormalizePipelineProperty:
    @given(
        st.integers(3, 8),
        st.integers(2, 5),
        st.sampled_from([0, 1]),
    )
    @settings(max_examples=20, deadline=None)
    def test_normalized_parallel_execution_correct(self, n, processors, dist_dim):
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 0, "N-1")],
            body=["C[i, j] = C[i, j] + A[i, k] * B[k, j]"],
            arrays=[("C", "N", "N"), ("A", "N", "N"), ("B", "N", "N")],
            distributions={
                "A": Wrapped(dist_dim),
                "B": Wrapped(dist_dim),
                "C": Wrapped(dist_dim),
            },
            params={"N": n},
        )
        result = access_normalize(program)
        from repro.core import is_legal_transformation

        assert is_legal_transformation(result.matrix, result.dependence_columns)
        node = generate_spmd(result.transformed)
        arrays = allocate_arrays(program, seed=9)
        expected = arrays["C"] + arrays["A"] @ arrays["B"]
        simulate(node, processors=processors, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["C"], expected, atol=1e-9)


class TestStepNormalizationProperty:
    @given(
        st.integers(1, 4),
        st.integers(0, 3),
        st.integers(8, 20),
        st.integers(1, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_strided_semantics(self, step, low, high, inner_step):
        program = make_program(
            loops=[("i", low, high, step), ("j", 0, 6, inner_step)],
            body=["Grid[i, j] = 3*i + j"],
            arrays=[("Grid", high + 1, 7)],
        )
        normalized = normalize_program_steps(program)
        for loop in normalized.nest.loops:
            assert loop.step == 1
        base = allocate_arrays(program, init="zeros")
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(normalized, other)
        assert arrays_equal(base, other)
