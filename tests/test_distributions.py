"""Unit tests for the data distributions (Definition 2.1)."""

import pytest

from repro.distributions import (
    Block2D,
    Blocked,
    Replicated,
    Wrapped,
    blocked_column,
    blocked_row,
    wrapped_column,
    wrapped_row,
)
from repro.errors import DistributionError
from repro.ir import AffineExpr


class TestWrapped:
    def test_paper_distribution_function(self):
        # W2(i, j) = j mod P: processor 0 gets columns 0, P, 2P, ...
        dist = wrapped_column()
        shape = (8, 12)
        for j in range(12):
            assert dist.owner((0, j), 4, shape) == j % 4

    def test_wrapped_row(self):
        dist = wrapped_row()
        assert dist.owner((5, 0), 4, (8, 8)) == 1
        assert dist.distribution_dims() == (0,)

    def test_distribution_dims(self):
        assert wrapped_column().distribution_dims() == (1,)

    def test_bounds_checked(self):
        dist = wrapped_column()
        with pytest.raises(DistributionError):
            dist.owner((0, 12), 4, (8, 12))
        with pytest.raises(DistributionError):
            dist.owner((0, -1), 4, (8, 12))
        with pytest.raises(DistributionError):
            dist.owner((0,), 4, (8, 12))

    def test_negative_dim_rejected(self):
        with pytest.raises(DistributionError):
            Wrapped(-1)

    def test_ownership_guard(self):
        dist = wrapped_column()
        guard = dist.ownership_guard(
            (AffineExpr.var("i"), AffineExpr.parse("j-i")),
            AffineExpr.var("P"),
            AffineExpr.var("p"),
        )
        assert guard.evaluate({"i": 2, "j": 7, "P": 4, "p": 1})
        assert not guard.evaluate({"i": 2, "j": 7, "P": 4, "p": 2})

    def test_ownership_guard_rank_mismatch(self):
        with pytest.raises(DistributionError):
            wrapped_column().ownership_guard(
                (AffineExpr.var("i"),), AffineExpr.var("P"), AffineExpr.var("p")
            )

    def test_describe(self):
        assert "column" in wrapped_column().describe()
        assert "row" in wrapped_row().describe()
        assert "dim 2" in Wrapped(2).describe()


class TestBlocked:
    def test_even_split(self):
        dist = blocked_column()
        shape = (4, 12)
        # 12 columns over 4 processors: blocks of 3.
        assert dist.owner((0, 0), 4, shape) == 0
        assert dist.owner((0, 2), 4, shape) == 0
        assert dist.owner((0, 3), 4, shape) == 1
        assert dist.owner((0, 11), 4, shape) == 3

    def test_uneven_split_ceil_blocks(self):
        dist = blocked_row()
        shape = (10, 4)
        # 10 rows over 4 processors: blocks of ceil(10/4)=3.
        assert dist.block_size(4, shape) == 3
        assert dist.owner((9, 0), 4, shape) == 3

    def test_no_modular_guard(self):
        with pytest.raises(DistributionError):
            blocked_column().ownership_guard(
                (AffineExpr.var("i"), AffineExpr.var("j")),
                AffineExpr.var("P"),
                AffineExpr.var("p"),
            )

    def test_describe(self):
        assert "blocked" in blocked_column().describe()


class TestBlock2D:
    def test_grid_ownership(self):
        dist = Block2D(2, 3)
        shape = (4, 6)
        # 2x3 grid over a 4x6 array: 2x2 tiles.
        assert dist.owner((0, 0), 6, shape) == 0
        assert dist.owner((0, 2), 6, shape) == 1
        assert dist.owner((0, 4), 6, shape) == 2
        assert dist.owner((2, 0), 6, shape) == 3
        assert dist.owner((3, 5), 6, shape) == 5

    def test_dims(self):
        assert Block2D(2, 2).distribution_dims() == (0, 1)

    def test_grid_mismatch(self):
        with pytest.raises(DistributionError):
            Block2D(2, 3).owner((0, 0), 4, (4, 6))

    def test_rank_requirement(self):
        with pytest.raises(DistributionError):
            Block2D(2, 2).owner((0,), 4, (8,))

    def test_bad_grid(self):
        with pytest.raises(DistributionError):
            Block2D(0, 4)

    def test_describe(self):
        assert "2x3" in Block2D(2, 3).describe()


class TestReplicated:
    def test_no_owner(self):
        dist = Replicated()
        assert dist.owner((1, 1), 4, (2, 2)) is None
        assert dist.distribution_dims() == ()
        assert dist.describe() == "replicated"
        assert "Replicated" in repr(dist)

    def test_still_bounds_checked(self):
        with pytest.raises(DistributionError):
            Replicated().owner((5, 0), 4, (2, 2))


class TestBlockedEndToEnd:
    def test_blocked_schedule_with_blocked_arrays(self):
        """Blocked column distribution + blocked outer schedule keeps the
        normalized GEMM's C/B accesses mostly local."""
        import numpy as np

        from repro.codegen import generate_spmd
        from repro.core import access_normalize
        from repro.ir import allocate_arrays, make_program
        from repro.numa import simulate

        n = 16
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 0, "N-1")],
            body=["C[i, j] = C[i, j] + A[i, k] * B[k, j]"],
            arrays=[("C", "N", "N"), ("A", "N", "N"), ("B", "N", "N")],
            distributions={
                "A": blocked_column(),
                "B": blocked_column(),
                "C": blocked_column(),
            },
            params={"N": n},
            name="gemm-blocked",
        )
        result = access_normalize(program)
        node = generate_spmd(result.transformed, schedule="blocked")
        arrays = allocate_arrays(program, seed=50)
        expected = arrays["C"] + arrays["A"] @ arrays["B"]
        outcome = simulate(node, processors=4, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["C"], expected, atol=1e-9)
        totals = outcome.totals
        # With matched blocked schedule and distribution, far more local
        # than remote traffic.
        assert totals.local > 2 * totals.remote

    def test_block2d_references_are_check_class(self):
        from repro.codegen import RefClass, plan_locality
        from repro.ir import make_program

        program = make_program(
            loops=[("i", 0, 7), ("j", 0, 7)],
            body=["A[i, j] = A[i, j] + 1"],
            arrays=[("A", 8, 8)],
            distributions={"A": Block2D(2, 2)},
        )
        plan = plan_locality(program.nest, program.distributions)
        assert all(info.ref_class == RefClass.CHECK for info in plan.refs)

    def test_block2d_simulated(self):
        from repro.codegen import generate_spmd
        from repro.ir import make_program
        from repro.numa import simulate

        program = make_program(
            loops=[("i", 0, 7), ("j", 0, 7)],
            body=["A[i, j] = A[i, j] + 1"],
            arrays=[("A", 8, 8)],
            distributions={"A": Block2D(2, 2)},
        )
        node = generate_spmd(program, block_transfers=False)
        outcome = simulate(node, processors=4)
        totals = outcome.totals
        assert totals.local + totals.remote == 2 * 64
        assert totals.local > 0 and totals.remote > 0
