"""Tests for the fleet router: hash ring, fingerprints, routing, failover."""

import http.client
import json
import subprocess
import sys
import threading

import pytest

from repro.runtime import SimulationCache, reset_shared_cache, set_shared_cache
from repro.service.client import ServiceClient
from repro.service.protocol import ServiceConfig, ServiceError
from repro.service.router import (
    HashRing,
    RouterConfig,
    RouterThread,
    request_fingerprint,
)
from repro.service.server import ServerThread

GEMM_SOURCE = """
program gemm
param N = 8
real C(N, N) distribute (*, wrapped)
real A(N, N) distribute (*, wrapped)
real B(N, N) distribute (*, wrapped)

for i = 0, N-1
    for j = 0, N-1
        for k = 0, N-1
            C[i, j] = C[i, j] + A[i, k] * B[k, j]
"""

NODES = ["10.0.0.1:8753", "10.0.0.2:8753", "10.0.0.3:8753"]
KEYS = [f"key-{i}" for i in range(500)]


class TestHashRing:
    def test_deterministic_across_instances_and_orderings(self):
        ring_a = HashRing(NODES)
        ring_b = HashRing(list(reversed(NODES)))
        for key in KEYS:
            assert ring_a.lookup(key) == ring_b.lookup(key)
            assert ring_a.preference(key) == ring_b.preference(key)

    def test_deterministic_across_processes(self):
        """The ring must not depend on per-process hash salting."""
        script = (
            "import sys, json; sys.path.insert(0, 'src');"
            "from repro.service.router import HashRing;"
            f"ring = HashRing({NODES!r});"
            f"print(json.dumps([ring.lookup(k) for k in {KEYS[:50]!r}]))"
        )
        output = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
        ).stdout
        ring = HashRing(NODES)
        assert json.loads(output) == [ring.lookup(k) for k in KEYS[:50]]

    def test_preference_starts_with_owner_and_covers_all(self):
        ring = HashRing(NODES)
        for key in KEYS[:50]:
            order = ring.preference(key)
            assert order[0] == ring.lookup(key)
            assert sorted(order) == sorted(NODES)

    def test_removing_a_node_only_remaps_its_own_keys(self):
        """The consistent-hashing contract: keys owned by surviving
        nodes never move when a node leaves."""
        full = HashRing(NODES)
        removed = NODES[1]
        reduced = HashRing([n for n in NODES if n != removed])
        moved = 0
        for key in KEYS:
            owner = full.lookup(key)
            if owner == removed:
                moved += 1
                assert reduced.lookup(key) in reduced.nodes
            else:
                assert reduced.lookup(key) == owner
        # The removed node owned roughly a third of the keyspace; all of
        # it (and only it) remapped.
        assert 0 < moved < len(KEYS)

    def test_adding_a_node_only_steals_keys(self):
        base = HashRing(NODES)
        grown = HashRing(NODES + ["10.0.0.4:8753"])
        for key in KEYS:
            if grown.lookup(key) != "10.0.0.4:8753":
                assert grown.lookup(key) == base.lookup(key)

    def test_distribution_is_roughly_balanced(self):
        ring = HashRing(NODES, vnodes=128)
        counts = {node: 0 for node in NODES}
        for key in KEYS:
            counts[ring.lookup(key)] += 1
        for node, count in counts.items():
            assert count > len(KEYS) // 10, (node, counts)

    def test_rejects_empty_and_bad_vnodes(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(NODES, vnodes=0)


class TestRequestFingerprint:
    def test_key_order_does_not_matter(self):
        a = request_fingerprint(
            "simulate", b'{"source": "x", "processors": 4}'
        )
        b = request_fingerprint(
            "simulate", b'{"processors": 4, "source": "x"}'
        )
        assert a == b and a is not None

    def test_timeout_s_is_not_part_of_the_question(self):
        a = request_fingerprint("simulate", b'{"source": "x"}')
        b = request_fingerprint(
            "simulate", b'{"source": "x", "timeout_s": 5}'
        )
        assert a == b

    def test_op_is_part_of_the_question(self):
        body = b'{"source": "x"}'
        assert request_fingerprint("simulate", body) != request_fingerprint(
            "compile", body
        )

    def test_unfingerprintable_bodies(self):
        assert request_fingerprint("simulate", b"not json") is None
        assert request_fingerprint("simulate", b'["a", "list"]') is None
        assert request_fingerprint("simulate", b"") is not None  # empty = {}


@pytest.fixture
def isolated_cache():
    cache = set_shared_cache(SimulationCache())
    yield cache
    reset_shared_cache()


@pytest.fixture
def fleet(isolated_cache):
    """Three in-process replicas behind an in-process router."""
    replicas = [
        ServerThread(
            ServiceConfig(
                port=0, jobs=1, log_requests=False, batch_window_s=0.005,
                queue_limit=32, timeout_s=30.0,
            )
        ).start()
        for _ in range(3)
    ]
    router = RouterThread(
        RouterConfig(
            port=0,
            replicas=[f"127.0.0.1:{replica.port}" for replica in replicas],
            health_interval_s=0.2,
            log_requests=False,
        )
    ).start()
    try:
        yield router, replicas
    finally:
        router.stop()
        for replica in replicas:
            replica.stop()


def _raw_post(port, path, body_bytes):
    connection = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    connection.request(
        "POST", path, body_bytes, {"Content-Type": "application/json"}
    )
    response = connection.getresponse()
    payload = response.read()
    replica = response.getheader("X-Repro-Replica")
    status = response.status
    connection.close()
    return status, replica, payload


class TestFleetRouting:
    def test_identical_requests_hit_the_same_replica(self, fleet):
        router, _ = fleet
        body = json.dumps({"source": GEMM_SOURCE, "processors": 4}).encode()
        served_by = {
            _raw_post(router.port, "/v1/simulate", body)[1] for _ in range(4)
        }
        assert len(served_by) == 1

    def test_results_match_and_spread_only_by_content(self, fleet):
        router, _ = fleet
        client = ServiceClient("127.0.0.1", router.port, timeout=60.0)
        first = client.simulate({"source": GEMM_SOURCE, "processors": 4})
        second = client.simulate({"source": GEMM_SOURCE, "processors": 4})
        assert first["result"] == second["result"]
        assert first["result"]["simulation"]["processors"] == 4

    def test_concurrent_identical_requests_dedup_across_fleet(self, fleet):
        router, _ = fleet
        body = json.dumps({"source": GEMM_SOURCE, "processors": 6}).encode()
        results = []

        def fire():
            results.append(_raw_post(router.port, "/v1/simulate", body))

        threads = [threading.Thread(target=fire) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({payload for _, _, payload in results}) == 1
        assert all(status == 200 for status, _, _ in results)
        client = ServiceClient("127.0.0.1", router.port, timeout=60.0)
        snapshot = client.metrics()
        router_counters = snapshot["router"]["metrics"]["counters"]
        fleet_counters = snapshot["metrics"]["counters"]
        # One execution fleet-wide; every other waiter joined in flight.
        assert fleet_counters["simulate_calls"] == 1
        assert router_counters["router.dedup_inflight"] == 5

    def test_unfingerprintable_falls_back_to_round_robin(self, fleet):
        router, _ = fleet
        status, replica, payload = _raw_post(
            router.port, "/v1/compile", b"this is not json"
        )
        assert status == 400  # the replica rejected it, via the router
        assert replica is not None
        document = json.loads(payload)
        assert document["error"]["code"] == "bad_request"
        counters = ServiceClient(
            "127.0.0.1", router.port, timeout=30.0
        ).metrics()["router"]["metrics"]["counters"]
        assert counters["router.fallback_roundrobin"] >= 1

    def test_replica_death_fails_over_with_correct_answer(self, fleet):
        router, replicas = fleet
        payload = {"source": GEMM_SOURCE, "processors": 4}
        body = json.dumps(payload).encode()
        client = ServiceClient("127.0.0.1", router.port, timeout=60.0)
        before = client.simulate(payload)
        _, owner, _ = _raw_post(router.port, "/v1/simulate", body)
        victim = next(
            replica
            for replica in replicas
            if f"127.0.0.1:{replica.port}" == owner
        )
        victim.stop()
        status, served_by, _ = _raw_post(router.port, "/v1/simulate", body)
        assert status == 200
        assert served_by != owner
        after = client.simulate(payload)
        assert after["result"] == before["result"]
        health = client.health()
        assert health["status"] == "degraded"
        assert health["role"] == "router"

    def test_metricsz_aggregates_across_replicas(self, fleet):
        router, replicas = fleet
        client = ServiceClient("127.0.0.1", router.port, timeout=60.0)
        # Distinct payloads so different replicas do real work.
        for processors in (2, 3, 4, 5, 6, 7):
            client.simulate(
                {"source": GEMM_SOURCE, "processors": processors}
            )
        snapshot = client.metrics()
        assert snapshot["metrics"]["counters"]["simulate_calls"] == 6
        assert set(snapshot["replicas"]) == {
            f"127.0.0.1:{replica.port}" for replica in replicas
        }
        assert all(
            entry.get("ok") for entry in snapshot["replicas"].values()
        )

    def test_byte_identity_through_router_via_submit(self, fleet, capsys):
        from repro.cli import main

        path = "examples/programs/figure1.an"
        assert main(["compile", path, "--json"]) == 0
        direct = capsys.readouterr().out
        router, _ = fleet
        assert main([
            "submit", "compile", "--host", "127.0.0.1",
            "--port", str(router.port), path, "--json",
        ]) == 0
        served = capsys.readouterr().out
        assert served == direct


class TestClientRetry:
    def test_retries_saturated_admission_queue(self, isolated_cache):
        """The regression the satellite asks for: a 429 from a full
        admission queue is retried with backoff honoring Retry-After and
        eventually succeeds, instead of surfacing to the caller."""
        config = ServiceConfig(
            port=0, jobs=1, log_requests=False, queue_limit=1,
            batch_window_s=0.0, timeout_s=30.0,
        )
        with ServerThread(config) as handle:
            blocker = ServiceClient("127.0.0.1", handle.port, timeout=30.0)
            done = {}

            def slow():
                done["response"] = blocker.compile(
                    {"source": GEMM_SOURCE, "delay_ms": 1200}
                )

            thread = threading.Thread(target=slow)
            thread.start()
            deadline_client = ServiceClient(
                "127.0.0.1", handle.port, timeout=30.0
            )
            assert _wait_until(
                lambda: deadline_client.health()["queue_depth"] == 1
            )
            # Without retries the saturated queue surfaces as 429 ...
            with pytest.raises(ServiceError) as excinfo:
                deadline_client.compile({"source": GEMM_SOURCE})
            assert excinfo.value.status == 429
            # ... with retries the client backs off and gets through.
            retrying = ServiceClient(
                "127.0.0.1", handle.port, timeout=30.0,
                retries=5, backoff_base_s=0.05,
            )
            response = retrying.compile({"source": GEMM_SOURCE})
            assert response["ok"] is True
            thread.join(timeout=30)
            assert done["response"]["ok"] is True

    def test_non_retryable_errors_fail_fast(self, isolated_cache):
        config = ServiceConfig(
            port=0, jobs=1, log_requests=False, batch_window_s=0.0,
        )
        with ServerThread(config) as handle:
            client = ServiceClient(
                "127.0.0.1", handle.port, timeout=30.0, retries=3,
            )
            with pytest.raises(ServiceError) as excinfo:
                client.compile({"source": "garbage"})
            assert excinfo.value.status == 422  # one attempt, no sleeps

    def test_retries_validation(self):
        with pytest.raises(ValueError):
            ServiceClient(retries=-1)

    def test_backoff_honors_retry_after_floor(self):
        client = ServiceClient(retries=2, backoff_base_s=0.01)
        assert client._backoff_s(0, retry_after=0.5) >= 0.5
        assert client._backoff_s(0, retry_after=None) <= 0.01
        # Capped by backoff_max_s even against a huge server hint.
        capped = ServiceClient(retries=1, backoff_max_s=0.2)
        assert capped._backoff_s(0, retry_after=60.0) == 0.2


def _wait_until(predicate, timeout=10.0, interval=0.01):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False
