"""Tests for the results-report generator, per-processor tables, the DSL
``assume`` directive, and a scipy cross-validation of the exact LP."""

import numpy as np
import pytest

from repro.bench.report import build_report, main as report_main
from repro.blas import gemm_program
from repro.codegen import generate_spmd
from repro.core import access_normalize
from repro.lang import parse_program
from repro.linalg import Constraint, maximize
from repro.numa import simulate


class TestReport:
    def test_build_report_sections(self):
        report = build_report(n_gemm=48, n_syr2k=48, b=8)
        assert "FIG4" in report
        assert "FIG5" in report
        assert "ABL1" in report
        assert "ABL6" in report
        assert "(processors)" in report  # charts present

    def test_main_writes_file(self, tmp_path, capsys):
        output = tmp_path / "RESULTS.md"
        assert report_main(
            ["--output", str(output), "--gemm-n", "32",
             "--syr2k-n", "32", "--band", "6"]
        ) == 0
        assert output.exists()
        assert "wrote" in capsys.readouterr().out


class TestPerProcTable:
    def test_table_contents(self):
        node = generate_spmd(access_normalize(gemm_program(12)).transformed)
        outcome = simulate(node, processors=3)
        table = outcome.table()
        lines = table.splitlines()
        assert len(lines) == 2 + 3  # header, rule, one row per processor
        assert "proc" in lines[0]
        assert "time (ms)" in lines[0]

    def test_table_shows_imbalance(self):
        # 5 outer iterations on 4 processors: processor 0 gets two.
        node = generate_spmd(access_normalize(gemm_program(5)).transformed)
        outcome = simulate(node, processors=4)
        iters = [r.counts.iterations for r in outcome.per_proc]
        assert max(iters) == 2 * 5 * 5
        assert min(iters) == 5 * 5


class TestAssumeDirective:
    SOURCE = """
program banded
param N = 40
param b = 5
assume N >= 2*b
assume b >= 2
real Cb(N, 2*b-1) distribute (*, wrapped)
real Ab(N, 2*b-1) distribute (*, wrapped)
real Bb(N, 2*b-1) distribute (*, wrapped)

for i = 0, N-1
    for j = i, min(i+2b-2, N-1)
        for k = max(i-b+1, j-b+1, 0), min(i+b-1, j+b-1, N-1)
            Cb[i, j-i] = Cb[i, j-i] + Ab[k, i-k+b-1]*Bb[k, j-k+b-1]
"""

    def test_assumptions_parsed(self):
        program = parse_program(self.SOURCE)
        assert program.assumptions == ("N >= 2*b", "b >= 2")

    def test_assumptions_simplify_bounds(self):
        program = parse_program(self.SOURCE)
        result = access_normalize(
            program, priority=["j-i", "j-k", "k", "i-k", "i"]
        )
        outer = result.transformed.nest.loops[0]
        assert len(outer.lower) == 1 and len(outer.upper) == 1
        assert str(outer) == "for u = 0, 2*b-2"

    def test_explicit_assumptions_override_program(self):
        program = parse_program(self.SOURCE)
        result = access_normalize(
            program,
            priority=["j-i", "j-k", "k", "i-k", "i"],
            assumptions=[],  # explicitly none
        )
        outer = result.transformed.nest.loops[0]
        assert len(outer.upper) > 1  # no facts, bounds stay guarded

    def test_bad_assume_rejected(self):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            parse_program("assume N == 4\nreal A(4)\nfor i = 0, 3\n    A[i] = 1\n")

    def test_assumptions_survive_with_nest(self):
        program = parse_program(self.SOURCE)
        clone = program.with_nest(program.nest).with_params(N=80)
        assert clone.assumptions == program.assumptions


class TestLPAgainstScipy:
    """Cross-validate the exact Fourier-Motzkin LP against scipy linprog."""

    @pytest.mark.parametrize("seed", range(8))
    def test_random_bounded_lp(self, seed):
        from scipy.optimize import linprog

        rng = np.random.default_rng(seed)
        nvars = int(rng.integers(2, 4))
        nconstraints = int(rng.integers(3, 5))
        a_ub = rng.integers(-3, 4, size=(nconstraints, nvars))
        b_ub = rng.integers(1, 12, size=nconstraints)
        objective = rng.integers(-5, 6, size=nvars)
        # Box-bound everything so the LP is feasible and bounded.
        constraints = [
            Constraint.make([-int(v) for v in row], int(rhs))
            for row, rhs in zip(a_ub, b_ub)
        ]
        for var in range(nvars):
            unit = [0] * nvars
            unit[var] = 1
            constraints.append(Constraint.make(unit, 10))   # x >= -10
            unit_neg = [0] * nvars
            unit_neg[var] = -1
            constraints.append(Constraint.make(unit_neg, 10))  # x <= 10

        ours = maximize(constraints, [int(c) for c in objective])
        result = linprog(
            c=-objective,
            A_ub=np.vstack([a_ub, np.eye(nvars), -np.eye(nvars)]),
            b_ub=np.concatenate([b_ub, [10] * nvars, [10] * nvars]),
            bounds=[(None, None)] * nvars,
            method="highs",
        )
        assert result.success
        assert ours is not None
        assert float(ours) == pytest.approx(-result.fun, abs=1e-7)
