"""Replay the regression corpus through the differential oracle.

Every top-level JSON file under ``tests/corpus/`` is a
:class:`~repro.fuzz.spec.ProgramSpec` corpus entry (hand-seeded or promoted
from a ``repro fuzz`` finding) and must pass the full oracle: interpreter
equivalence after normalization and SPMD generation, plus the simulator's
accounting invariants.

``tests/corpus/pending/`` is deliberately NOT loaded — that is where the
fuzzer parks freshly shrunk, not-yet-fixed failures, so an open finding
never breaks the tier-1 suite.  Promoting an entry = moving its JSON file
up one directory once the underlying bug is fixed.
"""

import glob
import json
import os

import pytest

from repro.fuzz import ProgramSpec, check_spec

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

ENTRIES = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))


def _load_spec(path):
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    # Corpus entries wrap the spec ({"spec": ..., "found": ..., "note": ...});
    # a bare spec document is accepted too.
    return ProgramSpec.from_dict(data.get("spec", data))


def test_corpus_is_seeded():
    assert ENTRIES, f"no corpus entries found under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", ENTRIES, ids=[os.path.splitext(os.path.basename(p))[0] for p in ENTRIES]
)
def test_corpus_entry(path):
    spec = _load_spec(path)
    outcome = check_spec(spec)
    assert outcome.ok, (
        f"{os.path.basename(path)}: {outcome.status} at stage "
        f"{outcome.stage!r}: {outcome.detail}"
    )


def test_pending_entries_still_parse():
    """Pending findings must at least stay loadable (they are shipped as CI
    artifacts and promoted by hand); they are allowed to fail the oracle."""
    pending = sorted(glob.glob(os.path.join(CORPUS_DIR, "pending", "*.json")))
    for path in pending:
        _load_spec(path)
