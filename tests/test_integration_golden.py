"""Golden end-to-end pipeline tests for every workload.

For each workload: run access normalization, generate the SPMD node
program, simulate in execute mode against the numpy reference, and check
the conservation laws and legality.  This is the safety net that keeps all
subsystems compatible.
"""

import numpy as np
import pytest

from repro.blas import (
    PAPER_PRIORITY,
    gemm_program,
    gemm_reference,
    gemv_program,
    gemv_reference,
    jacobi_program,
    jacobi_reference,
    syr2k_program,
    syr2k_reference,
    syrk_program,
    syrk_reference,
)
from repro.codegen import generate_spmd, render_node_program
from repro.core import access_normalize, is_legal_transformation
from repro.ir import allocate_arrays, execute, render_nest
from repro.numa import simulate

CASES = {
    "gemm": {
        "program": lambda: gemm_program(8),
        "priority": None,
        "check": lambda arrays: ("C", gemm_reference(arrays)),
        "refs_per_iteration": 4,
    },
    "syr2k": {
        "program": lambda: syr2k_program(12, 3),
        "priority": list(PAPER_PRIORITY),
        "check": lambda arrays: ("Cb", syr2k_reference(arrays, 12, 3)),
        "refs_per_iteration": 6,
    },
    "syrk": {
        "program": lambda: syrk_program(9),
        "priority": None,
        "check": lambda arrays: ("C", syrk_reference(arrays)),
        "refs_per_iteration": 4,
    },
    "gemv": {
        "program": lambda: gemv_program(10),
        "priority": None,
        "check": lambda arrays: ("Y", gemv_reference(arrays)),
        "refs_per_iteration": 4,
    },
    "jacobi": {
        "program": lambda: jacobi_program(12),
        "priority": None,
        "check": lambda arrays: ("B", jacobi_reference(arrays)),
        "refs_per_iteration": 5,
    },
}


@pytest.fixture(params=sorted(CASES))
def case(request):
    spec = CASES[request.param]
    program = spec["program"]()
    result = access_normalize(program, priority=spec["priority"])
    return request.param, spec, program, result


class TestGoldenPipeline:
    def test_legality(self, case):
        _, _, _, result = case
        assert is_legal_transformation(result.matrix, result.dependence_columns)
        assert result.outer_carried_count == 0

    def test_semantic_equivalence_sequential(self, case):
        _, _, program, result = case
        base = allocate_arrays(program, seed=7)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        for name in base:
            np.testing.assert_allclose(base[name], other[name], atol=1e-9)

    @pytest.mark.parametrize("processors", [1, 3, 4])
    def test_parallel_execution_matches_numpy(self, case, processors):
        name, spec, program, result = case
        node = generate_spmd(result.transformed)
        arrays = allocate_arrays(program, seed=11)
        target, expected = spec["check"](arrays)
        simulate(node, processors=processors, arrays=arrays, mode="execute")
        if name == "syrk":
            np.testing.assert_allclose(
                np.triu(arrays[target]), np.triu(expected), atol=1e-9
            )
        else:
            np.testing.assert_allclose(arrays[target], expected, atol=1e-9)

    def test_conservation(self, case):
        _, spec, program, result = case
        node = generate_spmd(result.transformed, block_transfers=False)
        sequential = simulate(node, processors=1)
        parallel = simulate(node, processors=3)
        assert parallel.totals.iterations == sequential.totals.iterations
        assert parallel.totals.statements == sequential.totals.statements
        expected_accesses = (
            spec["refs_per_iteration"] * sequential.totals.iterations
        )
        for outcome in (sequential, parallel):
            assert (
                outcome.totals.local + outcome.totals.remote
                == expected_accesses
            )

    def test_speedup_profile(self, case):
        _, _, _, result = case
        node = generate_spmd(result.transformed)
        sequential = simulate(node, processors=1).total_time_us
        parallel = simulate(node, processors=4)
        speedup = parallel.speedup(sequential)
        assert 0.5 < speedup <= 4.0 + 1e-9

    def test_artifacts_render(self, case):
        _, _, _, result = case
        node = generate_spmd(result.transformed)
        assert render_nest(result.transformed.nest)
        assert "node program" in render_node_program(node)
        assert "transformation T" in result.report()
