"""Schema tests for the load harness's summary document.

The harness itself (servers, subprocesses, SIGKILL) runs in CI via
``scripts/service_load.py --smoke --check``; these tests pin the *pure*
parts — the summary schema documented in the module docstring must keep
a fixed key set regardless of concurrency, replica count or job count.
"""

import importlib.util
import os

import pytest

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_spec = importlib.util.spec_from_file_location(
    "service_load", os.path.join(_ROOT, "scripts", "service_load.py")
)
service_load = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(service_load)

MIX_KEYS = {
    "requests", "errors", "qps", "p50_ms", "p99_ms",
    "dedup_rate", "cache_hit_rate",
}
CHECK_KEYS = {
    "byte_identity", "single_drain_dropped", "fleet_drain_dropped",
    "kill_errors", "kill_wrong_answers",
}
TOP_KEYS = {
    "cores", "concurrency", "replicas", "single", "fleet", "checks",
    "fleet_vs_single_qps",
}


def _mix(requests=10, qps=100.0):
    wall = requests / qps if qps else 0.0
    return service_load.mix_stats(
        requests, 0, [1.0] * requests, wall, {"cache_hits": 2}
    )


def _summary(*, concurrency, replicas, single_qps=100.0, fleet_qps=250.0):
    single = {"miss": _mix(qps=single_qps), "mixed": _mix()}
    kill = dict(_mix(), failovers=3)
    fleet = {"miss": _mix(qps=fleet_qps), "mixed": _mix(), "kill": kill}
    checks = {
        "byte_identity": True,
        "single_drain_dropped": 0,
        "fleet_drain_dropped": 0,
        "kill_errors": 0,
        "kill_wrong_answers": 0,
    }
    return service_load.build_summary(
        "smoke", 4, concurrency, replicas, single, fleet, checks
    )


class TestSummarySchema:
    def test_key_set_matches_documented_schema(self):
        summary = _summary(concurrency=16, replicas=3)
        assert set(summary) == TOP_KEYS
        assert set(summary["checks"]) == CHECK_KEYS
        assert set(summary["single"]) == {"miss", "mixed"}
        assert set(summary["fleet"]) == {"miss", "mixed", "kill"}
        for mix in (*summary["single"].values(), summary["fleet"]["miss"],
                    summary["fleet"]["mixed"]):
            assert set(mix) == MIX_KEYS
        assert set(summary["fleet"]["kill"]) == MIX_KEYS | {"failovers"}

    def test_schema_is_knob_independent(self):
        """Different concurrency/replica knobs change values, never keys
        — CI floors and tooling never chase shape changes."""
        def shape(document):
            if isinstance(document, dict):
                return {k: shape(v) for k, v in sorted(document.items())}
            return type(document).__name__
        small = _summary(concurrency=2, replicas=3)
        large = _summary(concurrency=512, replicas=9)
        assert shape(small) == shape(large)

    def test_ratio_and_zero_division(self):
        summary = _summary(concurrency=16, replicas=3,
                           single_qps=100.0, fleet_qps=250.0)
        assert summary["fleet_vs_single_qps"] == pytest.approx(2.5)
        zero = _summary(concurrency=16, replicas=3, single_qps=0.0)
        assert zero["fleet_vs_single_qps"] == 0.0

    def test_hard_invariants_flag_every_violation(self):
        summary = _summary(concurrency=16, replicas=3)
        assert service_load.hard_invariants(summary) == []
        summary["checks"]["kill_wrong_answers"] = 2
        summary["checks"]["byte_identity"] = False
        summary["single"]["miss"]["errors"] = 1
        problems = service_load.hard_invariants(summary)
        assert len(problems) == 3

    def test_check_gate_is_core_aware(self):
        recorded = _summary(concurrency=16, replicas=3)
        fresh = _summary(concurrency=16, replicas=3,
                         single_qps=100.0, fleet_qps=150.0)  # ratio 1.5
        fresh_multicore = dict(fresh, cores=4)
        assert any(
            "fleet_vs_single_qps" in problem
            for problem in service_load.check_against(
                recorded, fresh_multicore
            )
        )
        fresh_starved = dict(fresh, cores=1)
        assert service_load.check_against(recorded, fresh_starved) == []

    def test_check_gate_floors_qps_and_p99(self):
        recorded = _summary(concurrency=16, replicas=3,
                            single_qps=100.0, fleet_qps=250.0)
        slow = _summary(concurrency=16, replicas=3,
                        single_qps=10.0, fleet_qps=25.0)
        slow = dict(slow, cores=1)
        problems = service_load.check_against(recorded, slow)
        assert any("qps" in problem and "floor" in problem
                   for problem in problems)


class TestPercentile:
    def test_nearest_rank(self):
        samples = [float(v) for v in range(1, 101)]
        assert service_load.percentile(samples, 0.50) == 50.0
        assert service_load.percentile(samples, 0.99) == 99.0
        assert service_load.percentile([7.0], 0.99) == 7.0
        assert service_load.percentile([], 0.5) == 0.0


class TestWorkload:
    def test_miss_cells_are_distinct(self):
        cells = service_load.miss_cells(500)
        assert len(cells) == 500
        assert len(set(cells)) == 500

    def test_mixed_ops_cover_all_three_families(self):
        ops = service_load.mixed_ops(30, "src")
        kinds = {op for op, _ in ops}
        assert kinds == {"compile", "simulate"}
        payloads = [payload for op, payload in ops if op == "simulate"]
        sources = {payload["source"] for payload in payloads}
        assert len(sources) > 4  # duplicates pool plus fresh cells
