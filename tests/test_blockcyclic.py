"""Tests for the block-cyclic distribution and tile/block alignment."""

import pytest

from repro.codegen import generate_tiled_spmd
from repro.core import apply_transformation
from repro.distributions import BlockCyclic, Wrapped
from repro.errors import DistributionError
from repro.ir import make_program
from repro.lang import parse_program
from repro.linalg import Matrix
from repro.numa import simulate


class TestBlockCyclic:
    def test_owner_pattern(self):
        dist = BlockCyclic(1, 3)
        shape = (2, 24)
        owners = [dist.owner((0, j), 4, shape) for j in range(24)]
        assert owners[:12] == [0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]
        assert owners[12:15] == [0, 0, 0]  # wraps around

    def test_block_one_equals_wrapped(self):
        cyclic = BlockCyclic(0, 1)
        wrapped = Wrapped(0)
        shape = (17,)
        for i in range(17):
            assert cyclic.owner((i,), 5, shape) == wrapped.owner((i,), 5, shape)

    def test_validation(self):
        with pytest.raises(DistributionError):
            BlockCyclic(-1, 2)
        with pytest.raises(DistributionError):
            BlockCyclic(0, 0)
        with pytest.raises(DistributionError):
            BlockCyclic(0, 2).owner((99,), 4, (10,))

    def test_describe(self):
        assert "block-cyclic(4)" in BlockCyclic(1, 4).describe()

    def test_dsl_spec(self):
        program = parse_program(
            """
real A(8, 16) distribute (*, cyclic(4))
for i = 0, 7
    A[i, i] = 1
"""
        )
        dist = program.distributions["A"]
        assert isinstance(dist, BlockCyclic)
        assert dist.dim == 1 and dist.block == 4

    def test_dsl_blockcyclic_alias(self):
        program = parse_program(
            """
real A(16) distribute (blockcyclic(2))
for i = 0, 15
    A[i] = 1
"""
        )
        assert isinstance(program.distributions["A"], BlockCyclic)


class TestTileBlockAlignment:
    """Tiles aligned with the distribution's block size restore locality."""

    def column_sweep(self, n, block):
        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 0, "N-1")],
            body=["A[i, j] = A[i, j] + 1"],
            arrays=[("A", "N", "N")],
            distributions={"A": BlockCyclic(1, block)},
            params={"N": n},
        )
        swapped = apply_transformation(program.nest, Matrix([[0, 1], [1, 0]]))
        return program.with_nest(swapped.nest)

    @pytest.mark.parametrize("tile,expected_local", [
        (4, 1.0),   # aligned: every tile lands on its owner
        (2, 0.25),  # misaligned: 1/P locality
        (8, 0.25),
    ])
    def test_alignment(self, tile, expected_local):
        program = self.column_sweep(64, 4)
        node = generate_tiled_spmd(program, tile_size=tile, block_transfers=False)
        outcome = simulate(node, processors=4)
        totals = outcome.totals
        fraction = totals.local / (totals.local + totals.remote)
        assert fraction == pytest.approx(expected_local, abs=0.02)

    def test_aligned_tiling_executes_correctly(self):
        import numpy as np
        from repro.ir import allocate_arrays

        program = self.column_sweep(16, 4)
        node = generate_tiled_spmd(program, tile_size=4, block_transfers=False)
        arrays = allocate_arrays(program, init="zeros")
        simulate(node, processors=4, arrays=arrays, mode="execute")
        np.testing.assert_allclose(arrays["A"], np.ones((16, 16)))
