"""Tests for the compilation service: daemon, batching, client, submit CLI."""

import glob
import json
import threading
import time

import pytest

from repro.cli import _parse_procs, main
from repro.runtime import SimulationCache, reset_shared_cache, set_shared_cache
from repro.service.client import ServiceClient
from repro.service.jobs import execute_batch, execute_job, run_compile
from repro.service.protocol import ServiceConfig, ServiceError
from repro.service.queueing import AdmissionQueue
from repro.service.server import ServerThread

EXAMPLES = sorted(glob.glob("examples/programs/*.an"))

GEMM_SOURCE = """
program gemm
param N = 8
real C(N, N) distribute (*, wrapped)
real A(N, N) distribute (*, wrapped)
real B(N, N) distribute (*, wrapped)

for i = 0, N-1
    for j = 0, N-1
        for k = 0, N-1
            C[i, j] = C[i, j] + A[i, k] * B[k, j]
"""


@pytest.fixture
def isolated_cache():
    """Give each server test a private shared cache; restore after."""
    cache = set_shared_cache(SimulationCache())
    yield cache
    reset_shared_cache()


@pytest.fixture
def server(isolated_cache):
    config = ServiceConfig(
        port=0, jobs=1, log_requests=False, batch_window_s=0.005,
        queue_limit=32, timeout_s=30.0,
    )
    with ServerThread(config) as handle:
        yield handle


@pytest.fixture
def client(server):
    return ServiceClient("127.0.0.1", server.port, timeout=30.0)


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["version"] == 1
        assert health["uptime_s"] >= 0.0

    def test_metricsz_shape(self, client):
        client.compile({"source": GEMM_SOURCE, "emit": "report"})
        snapshot = client.metrics()
        assert snapshot["service"]["queue"]["capacity"] == 32
        assert snapshot["service"]["queue"]["depth"] == 0
        assert snapshot["metrics"]["counters"]["service.requests"] >= 1
        assert "timers" in snapshot["metrics"]
        assert "memory_entries" in snapshot["cache"]

    def test_compile_roundtrip(self, client):
        response = client.compile({"source": GEMM_SOURCE})
        assert response["ok"] is True
        assert response["exit_code"] == 0
        stdout = response["result"]["stdout"]
        assert "access normalization report" in stdout
        assert "generated Python" in stdout

    def test_analyze_roundtrip(self, client):
        response = client.analyze(
            {"inputs": [{"name": "gemm.an", "text": GEMM_SOURCE}]}
        )
        assert response["ok"] is True
        assert response["exit_code"] == 0
        assert "gemm" in response["result"]["stdout"]

    def test_simulate_roundtrip(self, client):
        response = client.simulate({"source": GEMM_SOURCE, "processors": 4})
        simulation = response["result"]["simulation"]
        assert simulation["processors"] == 4
        assert simulation["total_time_us"] > 0
        assert len(simulation["per_proc"]) == 4

    def test_sweep_roundtrip(self, client):
        response = client.sweep({"source": GEMM_SOURCE, "processors": [1, 4]})
        stdout = response["result"]["stdout"]
        assert stdout.startswith("machine: ")
        assert "normalized+bt" in stdout

    def test_compile_error_maps_to_422(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.compile({"source": "this is not a program"})
        assert excinfo.value.status == 422
        assert excinfo.value.code == "compile_error"

    def test_missing_source_is_compile_error(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.simulate({"processors": 2})
        assert excinfo.value.status == 422

    def test_unknown_op_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._roundtrip("POST", "/v1/transmogrify", {})
        assert excinfo.value.status == 404

    def test_bad_json_body_is_400(self, server):
        import http.client

        connection = http.client.HTTPConnection(
            "127.0.0.1", server.port, timeout=10
        )
        connection.request(
            "POST", "/v1/compile", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        assert response.status == 400
        connection.close()


class TestDeduplication:
    def test_concurrent_identical_simulations_run_once(self, server):
        payload = {"source": GEMM_SOURCE, "processors": 8}
        results = []

        def worker():
            local = ServiceClient("127.0.0.1", server.port, timeout=30.0)
            results.append(local.simulate(payload))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(results) == 8
        payloads = {
            json.dumps(r["result"]["simulation"], sort_keys=True)
            for r in results
        }
        assert len(payloads) == 1
        counters = ServiceClient("127.0.0.1", server.port).metrics()[
            "metrics"
        ]["counters"]
        # One real execution; the other seven joined an in-flight future,
        # a within-batch grid slot, or the warm cache.
        assert counters["simulate_calls"] == 1
        joined = (
            counters.get("service.dedup_inflight", 0)
            + counters.get("dedup_hits", 0)
            + counters.get("cache_hits", 0)
        )
        assert joined == 7

    def test_repeat_request_hits_cache(self, client):
        payload = {"source": GEMM_SOURCE, "processors": 4}
        client.simulate(payload)
        client.simulate(payload)
        counters = client.metrics()["metrics"]["counters"]
        assert counters["simulate_calls"] == 1
        assert counters.get("cache_hits", 0) >= 1


class TestBackpressure:
    def test_queue_full_answers_429(self, isolated_cache):
        config = ServiceConfig(
            port=0, jobs=1, log_requests=False, queue_limit=1,
            batch_window_s=0.0, timeout_s=30.0,
        )
        with ServerThread(config) as handle:
            client = ServiceClient("127.0.0.1", handle.port, timeout=30.0)
            outcome = {}

            def slow():
                outcome["response"] = client.compile(
                    {"source": GEMM_SOURCE, "delay_ms": 1500}
                )

            thread = threading.Thread(target=slow)
            thread.start()
            assert wait_until(
                lambda: client.health()["queue_depth"] == 1
            ), "slow request never admitted"
            with pytest.raises(ServiceError) as excinfo:
                client.compile({"source": GEMM_SOURCE})
            assert excinfo.value.status == 429
            assert excinfo.value.code == "queue_full"
            assert excinfo.value.retry_after is not None
            thread.join(timeout=30)
            assert outcome["response"]["ok"] is True
            counters = client.metrics()["metrics"]["counters"]
            assert counters["service.rejected"] >= 1

    def test_timeout_answers_504(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.compile(
                {"source": GEMM_SOURCE, "delay_ms": 3000, "timeout_s": 0.2}
            )
        assert excinfo.value.status == 504
        assert excinfo.value.code == "timeout"
        counters = client.metrics()["metrics"]["counters"]
        assert counters["service.timeouts"] >= 1

    def test_timeout_does_not_cancel_other_waiters(self, server):
        """A timed-out waiter must not tear down the shared computation."""
        payload = {"source": GEMM_SOURCE, "processors": 2, "delay_ms": 600}
        outcome = {}

        def patient():
            local = ServiceClient("127.0.0.1", server.port, timeout=30.0)
            outcome["response"] = local.simulate(payload)

        thread = threading.Thread(target=patient)
        thread.start()
        time.sleep(0.1)
        impatient = ServiceClient("127.0.0.1", server.port, timeout=30.0)
        with pytest.raises(ServiceError):
            impatient.simulate({**payload, "timeout_s": 0.1})
        thread.join(timeout=30)
        assert outcome["response"]["ok"] is True


class TestGracefulDrain:
    def test_drain_completes_in_flight_requests(self, isolated_cache):
        config = ServiceConfig(
            port=0, jobs=1, log_requests=False, batch_window_s=0.0,
            timeout_s=30.0,
        )
        handle = ServerThread(config).start()
        client = ServiceClient("127.0.0.1", handle.port, timeout=30.0)
        outcome = {}

        def slow():
            outcome["response"] = client.compile(
                {"source": GEMM_SOURCE, "delay_ms": 800}
            )

        thread = threading.Thread(target=slow)
        thread.start()
        assert wait_until(lambda: client.health()["queue_depth"] == 1)
        handle.stop(timeout=30)  # initiates drain and joins the loop thread
        thread.join(timeout=30)
        assert outcome["response"]["ok"] is True
        assert "access normalization report" in (
            outcome["response"]["result"]["stdout"]
        )
        with pytest.raises(ServiceError):
            client.health()  # listener is gone after drain


class TestByteIdenticalWithDirectCLI:
    @pytest.mark.parametrize("path", EXAMPLES)
    def test_compile_json_matches(self, path, server, capsys):
        assert main(["compile", path, "--json"]) == 0
        direct = capsys.readouterr().out
        assert main([
            "submit", "compile", "--host", "127.0.0.1",
            "--port", str(server.port), path, "--json",
        ]) == 0
        served = capsys.readouterr().out
        assert served == direct

    @pytest.mark.parametrize("path", EXAMPLES)
    def test_compile_text_matches(self, path, server, capsys):
        assert main(["compile", path]) == 0
        direct = capsys.readouterr().out
        assert main([
            "submit", "compile", "--host", "127.0.0.1",
            "--port", str(server.port), path,
        ]) == 0
        served = capsys.readouterr().out
        assert served == direct

    def test_analyze_matches(self, server, capsys):
        path = EXAMPLES[0]
        assert main(["analyze", path, "--json"]) == 0
        direct = capsys.readouterr().out
        assert main([
            "submit", "analyze", "--host", "127.0.0.1",
            "--port", str(server.port), path, "--json",
        ]) == 0
        served = capsys.readouterr().out
        assert served == direct

    def test_simulate_matches(self, server, capsys):
        path = EXAMPLES[0]
        assert main(["simulate", path, "-P", "1,4"]) == 0
        direct = capsys.readouterr().out
        assert main([
            "submit", "simulate", "--host", "127.0.0.1",
            "--port", str(server.port), path, "-P", "1,4",
        ]) == 0
        served = capsys.readouterr().out
        assert served == direct


class TestJobLayer:
    def test_execute_job_reports_errors_as_values(self):
        response = execute_job(("compile", {"source": "garbage input"}))
        assert response["ok"] is False
        assert response["error"]["code"] == "compile_error"
        assert response["exit_code"] == 1
        assert "metrics" in response

    def test_execute_job_unknown_op(self):
        response = execute_job(("minify", {"source": GEMM_SOURCE}))
        assert response["ok"] is False
        assert response["error"]["code"] == "bad_request"

    def test_execute_batch_mixed_ops(self):
        cache = SimulationCache()
        items = [
            ("compile", {"source": GEMM_SOURCE, "emit": "report"}),
            ("simulate", {"source": GEMM_SOURCE, "processors": 2}),
            ("simulate", {"source": GEMM_SOURCE, "processors": 2}),
            ("simulate", {"source": "broken", "processors": 2}),
        ]
        results, snapshot = execute_batch(items, jobs=1, cache=cache)
        assert results[0]["ok"] and "stdout" in results[0]["result"]
        assert results[1]["ok"] and results[2]["ok"]
        assert results[1]["result"] == results[2]["result"]
        assert results[3]["ok"] is False
        # The two identical cells collapsed inside one run_grid call.
        assert snapshot["counters"]["simulate_calls"] == 1
        assert snapshot["counters"]["dedup_hits"] == 1

    def test_run_compile_json_is_deterministic(self):
        payload = {"source": GEMM_SOURCE, "json": True}
        assert run_compile(payload) == run_compile(payload)
        document = json.loads(run_compile(payload))
        assert document["tool"] == "repro-compile"
        assert set(document["artifacts"]) == {"report", "ir", "node", "python"}


class TestAdmissionQueue:
    def test_capacity_enforced(self):
        queue = AdmissionQueue(2)
        assert queue.try_acquire() and queue.try_acquire()
        assert not queue.try_acquire()
        assert queue.rejected_total == 1
        queue.release()
        assert queue.try_acquire()
        assert queue.admitted_total == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


class TestParseProcs:
    def test_deduplicates_and_sorts(self):
        assert _parse_procs("4,4,1") == [1, 4]
        assert _parse_procs("8,2,2,8,1") == [1, 2, 8]

    def test_rejects_junk(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_procs("4,x")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_procs("")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_procs("0,4")
