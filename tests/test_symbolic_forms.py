"""The symbolic (tier-0) accounting layer and the PR's hardening fixes.

Covers the :mod:`repro.linalg.sympoly` piecewise-quasi-polynomial layer,
:class:`repro.numa.symbolic.SymbolicEngine` pinned against the
interpreter walk on a sampled (params, P) grid, the forced-engine error
contracts, auto's cost-based demotion, the fingerprint-keyed form store,
the ``solve`` job, and regression tests for the satellite fixes
(``Progression`` step validation, ``REPRO_CACHE_MAX_ENTRIES``
validation, true-LRU disk eviction, HTTP-date ``Retry-After``).
"""

import json
import os

import pytest

from repro.bench import gemm_variants, syr2k_variants
from repro.codegen import generate_spmd
from repro.core import access_normalize
from repro.errors import ConfigurationError, ReproError, SimulationError
from repro.lang import parse_program
from repro.linalg import Progression
from repro.linalg.sympoly import (
    SymbolicUnsupported,
    bounded_sum,
    const,
    eq0,
    eval_cost,
    floordiv,
    ge0,
    mod,
    pos,
    sum_budget,
    sym,
    sym_sum,
)
from repro.numa import simulate
from repro.numa.simulator import _symbolic_unpromising
from repro.numa.symbolic import FIELDS, SymbolicEngine
from repro.runtime.cache import SimulationCache, set_shared_cache, shared_cache
from repro.service.client import _parse_retry_after
from repro.service.jobs import _parse_bindings, _parse_candidate, run_solve

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
EXAMPLES = os.path.join(REPO_ROOT, "examples", "programs")


def _example_source(name):
    with open(os.path.join(EXAMPLES, name), "r", encoding="utf-8") as handle:
        return handle.read()


# ----------------------------------------------------------------------
# sympoly: the piecewise-quasi-polynomial layer
# ----------------------------------------------------------------------
class TestSympoly:
    def test_mod_floordiv_reconstruct(self):
        n = sym("n")
        expr = 5 * floordiv(n, 5) + mod(n, 5)
        for value in (-13, -1, 0, 1, 4, 5, 17):
            assert expr.evaluate({"n": value}) == value

    def test_indicator_semantics(self):
        n = sym("n")
        for value in (-3, -1, 0, 1, 7):
            assert pos(n).evaluate({"n": value}) == max(0, value)
            assert ge0(n).evaluate({"n": value}) == (1 if value >= 0 else 0)
            assert eq0(n).evaluate({"n": value}) == (1 if value == 0 else 0)

    def test_sym_sum_matches_bruteforce(self):
        body = const(2) + 3 * sym("t")
        closed = sym_sum(body, "t", sym("n"))
        assert not closed.depends_on("t")
        for n in (-4, 0, 1, 2, 9, 23):
            expected = sum(2 + 3 * t for t in range(max(0, n)))
            assert closed.evaluate({"n": n}) == expected

    def test_sym_sum_respects_budget(self):
        with sum_budget(0):
            with pytest.raises(SymbolicUnsupported):
                sym_sum(sym("t"), "t", sym("n"))

    def test_bounded_sum_evaluates_as_loop(self):
        squares = bounded_sum("t", sym("n"), sym("t") * sym("t"))
        assert squares.evaluate({"n": 6}) == 55
        assert squares.evaluate({"n": 0}) == 0
        assert squares.evaluate({"n": -2}) == 0

    def test_eval_cost_charges_loops_by_extent(self):
        hint = lambda bound: 10
        flat = const(1) + sym("x")
        body = sym("t") + const(1)
        loop = bounded_sum("t", sym("n"), body)
        assert eval_cost(flat, hint) <= 4
        assert eval_cost(loop, hint) >= 10 * (1 + eval_cost(body, hint))
        # A hint of zero extent still charges the surrounding expression.
        assert eval_cost(loop, lambda bound: 0) >= 1

    def test_compiled_forms_match_interpreter(self):
        node = gemm_variants(12)["gemm"]
        engine = SymbolicEngine(node)
        env = node.program.bound_params(None)
        for P in (1, 3, 4):
            for proc in range(P):
                full = dict(env)
                full[engine.procs_name] = P
                full[engine.proc_name] = proc
                for name, form in engine.forms.items():
                    assert form.evaluate_fast(full) == form.evaluate(full), (
                        name, P, proc,
                    )


# ----------------------------------------------------------------------
# SymbolicEngine pinned against the walk on a (params, P) grid
# ----------------------------------------------------------------------
GRID = [
    ("gemm.an", {"N": 8}),
    ("gemm.an", {"N": 19}),
    ("syr2k.an", {"N": 16, "b": 3}),
    ("syr2k.an", {"N": 25, "b": 5}),
    ("figure1.an", {"N1": 9, "N2": 7, "b": 2}),
]


@pytest.mark.parametrize(
    "filename,params", GRID, ids=[f"{n}-{p}" for n, p in GRID]
)
@pytest.mark.parametrize("processors", (1, 2, 5))
def test_symbolic_matches_walk_on_grid(filename, params, processors):
    program = parse_program(_example_source(filename), name=filename)
    normalized = access_normalize(program).transformed
    variants = (
        generate_spmd(program, block_transfers=False),
        generate_spmd(normalized, block_transfers=False),
        generate_spmd(normalized, block_transfers=True),
    )
    for node in variants:
        walk = simulate(
            node, processors=processors, params=params, engine="walk"
        )
        try:
            symbolic = simulate(
                node, processors=processors, params=params, engine="symbolic"
            )
        except SimulationError:
            # A forced tier may decline a nest, never disagree; the paper
            # kernels must not decline.
            assert filename == "figure1.an"
            continue
        assert symbolic.engine == "symbolic"
        for reference, tiered in zip(walk.per_proc, symbolic.per_proc):
            assert tiered.counts == reference.counts, (
                f"symbolic disagrees with walk on proc {reference.proc} "
                f"at P={processors}, params={params}"
            )


# ----------------------------------------------------------------------
# engine contracts and auto's cost-based demotion
# ----------------------------------------------------------------------
class TestEngineContracts:
    def test_symbolic_rejects_execute_mode(self):
        node = gemm_variants(8)["gemm"]
        with pytest.raises(SimulationError, match="account mode"):
            simulate(
                node, processors=2, engine="symbolic", mode="execute",
                arrays={},
            )

    def test_symbolic_rejects_block_cache(self):
        node = gemm_variants(8)["gemmB"]
        with pytest.raises(SimulationError, match="block cache"):
            simulate(node, processors=2, engine="symbolic", block_cache=True)

    def test_unknown_engine_rejected(self):
        node = gemm_variants(8)["gemm"]
        with pytest.raises(SimulationError, match="unknown engine"):
            simulate(node, processors=2, engine="quantum")

    def test_forced_symbolic_reports_unsupported_nest(self):
        source = """
program blockcyclic
param N = 16
real A(N) distribute (cyclic(2))

for i = 0, N-1
    A[i] = A[i] + 1
"""
        program = parse_program(source, name="blockcyclic")
        node = generate_spmd(program, block_transfers=False)
        with pytest.raises(SimulationError, match="symbolic engine cannot"):
            simulate(node, processors=2, engine="symbolic")
        # auto still answers (lower tier) and matches the walk.
        walk = simulate(node, processors=2, engine="walk")
        auto = simulate(node, processors=2)
        for reference, tiered in zip(walk.per_proc, auto.per_proc):
            assert tiered.counts == reference.counts

    def test_structural_prefilter_separates_paper_kernels(self):
        # Every paper kernel is promising now: rectangular GEMM bounds
        # trivially, and the banded SYR2K nests because residue-class
        # specialized evaluators made their multi-armed max/min bounds
        # cheap (5 extra arms, well under the budget).  Only a nest
        # whose arm count explodes the derivation's case split past
        # SYMBOLIC_MAX_EXTRA_ARMS is filtered out before deriving.
        for node in gemm_variants(8).values():
            assert not _symbolic_unpromising(node)
        for node in syr2k_variants(12, 2).values():
            assert not _symbolic_unpromising(node)
        source = """
program armstorm
param N = 32
param b = 4
real A(N, N) distribute (*, wrapped)

for i = 0, N-1
    for j = max(i-b+1, i-2*b+1, i-3*b+1, i-4*b+1, 0), min(i+b-1, i+2*b-1, i+3*b-1, i+4*b-1, N-1)
        for k = max(j-b+1, j-2*b+1, 0), min(j+b-1, j+2*b-1, N-1)
            A[i, j] = A[i, j] + A[i, k]
"""
        program = parse_program(source, name="armstorm")
        node = generate_spmd(program, block_transfers=False)
        assert _symbolic_unpromising(node)

    def test_estimate_cost_positive_and_param_sensitive(self):
        node = syr2k_variants(40, 6)["syr2k"]
        engine = SymbolicEngine(node)
        env = node.program.bound_params(None)
        small = engine.estimate_cost(env, 8)
        assert small > 0
        bigger = engine.estimate_cost(
            node.program.bound_params({"N": 400, "b": 48}), 8
        )
        assert bigger > small

    def test_form_store_derives_once_per_program(self):
        previous = shared_cache()
        cache = set_shared_cache(SimulationCache())
        try:
            node = gemm_variants(8)["gemm"]
            simulate(node, processors=2, engine="symbolic")
            simulate(node, processors=3, engine="symbolic")
            assert cache.form_derives == 1
            assert cache.form_hits >= 1
        finally:
            set_shared_cache(previous)

    def test_engine_fields_cover_access_counts(self):
        node = gemm_variants(8)["gemm"]
        engine = SymbolicEngine(node)
        assert set(engine.forms) == set(FIELDS)


# ----------------------------------------------------------------------
# the solve job
# ----------------------------------------------------------------------
class TestSolve:
    def _payload(self, **overrides):
        payload = {
            "source": _example_source("gemm.an"),
            "name": "gemm.an",
            "params": {"N": 12},
            "left": {"variant": "naive", "schedule": "wrapped"},
            "right": {"variant": "normalized+bt", "schedule": "wrapped"},
            "min_processors": 1,
            "max_processors": 6,
        }
        payload.update(overrides)
        return payload

    def test_solve_reports_crossover(self):
        output = run_solve(self._payload())
        assert "question: smallest P in [1, 6]" in output
        assert "naive/wrapped" in output
        assert "normalized+bt/wrapped" in output
        assert "answer:" in output
        # Deterministic: a re-run is byte-identical.
        assert run_solve(self._payload()) == output

    def test_solve_json_series_is_complete(self):
        document = json.loads(run_solve(self._payload(json=True)))
        assert document["tool"] == "repro-solve"
        assert document["min_processors"] == 1
        assert document["max_processors"] == 6
        assert len(document["series"]) == 6
        assert "crossover" in document
        for row in document["series"]:
            assert row["left_us"] >= 0 and row["right_us"] >= 0

    def test_solve_validates_candidates_and_range(self):
        with pytest.raises(ReproError, match="unknown variant"):
            run_solve(self._payload(left={"variant": "turbo"}))
        with pytest.raises(ReproError, match="unknown schedule"):
            run_solve(
                self._payload(right={"variant": "naive", "schedule": "x"})
            )
        with pytest.raises(ReproError, match="1 <= min <= max"):
            run_solve(self._payload(min_processors=5, max_processors=2))
        with pytest.raises(ReproError, match="solve cap"):
            run_solve(self._payload(max_processors=1 << 20))
        with pytest.raises(ReproError, match="integer bindings"):
            run_solve(self._payload(params={"N": "twelve"}))

    def test_candidate_and_binding_parsers(self):
        assert _parse_candidate("naive") == {
            "variant": "naive", "schedule": "wrapped",
        }
        assert _parse_candidate("normalized/blocked") == {
            "variant": "normalized", "schedule": "blocked",
        }
        assert _parse_bindings(["N=400", "b=48"]) == {"N": 400, "b": 48}
        assert _parse_bindings([]) is None
        with pytest.raises(ReproError, match="NAME=VALUE"):
            _parse_bindings(["N"])
        with pytest.raises(ReproError):
            _parse_bindings(["N=ten"])


# ----------------------------------------------------------------------
# satellite regressions
# ----------------------------------------------------------------------
class TestProgressionValidation:
    def test_zero_step_rejected(self):
        with pytest.raises(ValueError, match="step >= 1"):
            Progression(first=0, step=0, trips=3)
        with pytest.raises(ValueError, match="step >= 1"):
            Progression.from_bounds(0, 10, 0)

    def test_negative_step_rejected(self):
        with pytest.raises(ValueError, match="step >= 1"):
            Progression.from_bounds(0, 10, -2)

    def test_valid_step_unchanged(self):
        assert Progression.from_bounds(0, 10, 3).trips == 4


class TestSharedCacheConfig:
    def _reset(self):
        import repro.runtime.cache as cache_mod

        previous = cache_mod._SHARED
        cache_mod._SHARED = None
        return cache_mod, previous

    def test_malformed_cap_raises(self, monkeypatch):
        cache_mod, previous = self._reset()
        try:
            monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "10k")
            with pytest.raises(ConfigurationError, match="10k"):
                shared_cache()
        finally:
            cache_mod._SHARED = previous

    def test_valid_cap_applied(self, monkeypatch):
        cache_mod, previous = self._reset()
        try:
            monkeypatch.setenv("REPRO_CACHE_MAX_ENTRIES", "7")
            monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
            assert shared_cache().disk_max_entries == 7
        finally:
            cache_mod._SHARED = previous


class TestDiskLru:
    def test_disk_hit_refreshes_entry_against_eviction(self, tmp_path):
        node = gemm_variants(8)["gemm"]
        result = simulate(node, processors=2)
        cache = SimulationCache(store_dir=str(tmp_path), disk_max_entries=2)
        for index, key in enumerate(["old", "mid"]):
            cache.put(key, result)
            stamp = 1_000_000 + index
            os.utime(tmp_path / f"{key}.pkl", (stamp, stamp))
        # A disk hit (fresh cache: cold memory) must refresh the entry's
        # mtime, otherwise eviction is FIFO-by-write and the hottest
        # long-lived entry goes first.
        reader = SimulationCache(store_dir=str(tmp_path), disk_max_entries=2)
        assert reader.get("old") is not None
        reader.put("new", result)
        reader._evict_disk()
        assert reader.disk_entries() == 2
        assert (tmp_path / "old.pkl").exists()  # re-read: survives
        assert not (tmp_path / "mid.pkl").exists()  # coldest: evicted
        assert (tmp_path / "new.pkl").exists()


class TestRetryAfterParsing:
    @pytest.mark.parametrize(
        "value,expected",
        [
            ("1.5", 1.5),
            ("0", 0.0),
            ("120", 120.0),
            ("Fri, 31 Dec 1999 23:59:59 GMT", None),  # RFC 9110 HTTP-date
            ("soon", None),
            ("-5", None),
            ("", None),
            (None, None),
        ],
    )
    def test_values(self, value, expected):
        assert _parse_retry_after(value) == expected


# ----------------------------------------------------------------------
# Residue-class specialized evaluators (tier-0 on banded nests)
# ----------------------------------------------------------------------
class TestResidueClassSpecialization:
    """The fused, plan-specialized evaluation path on banded forms.

    Three implementations of the same counts must agree bit-for-bit:
    the fused evaluator with residue-class loop plans ("split"), the
    per-form interpreter (`evaluate`, "unsplit"), and the tier-3 walk.
    """

    def test_split_unsplit_walk_agree_on_banded_grid(self):
        from repro.linalg.sympoly import compile_account

        for name, node in syr2k_variants(18, 3).items():
            engine = SymbolicEngine(node)
            fused = compile_account(engine.forms)
            assert fused is not None, name
            for params in ({"N": 18, "b": 3}, {"N": 25, "b": 4}):
                env = node.program.bound_params(params)
                for processors in (1, 2, 3, 5):
                    walk = simulate(
                        node,
                        processors=processors,
                        params=params,
                        engine="walk",
                    )
                    for proc in range(processors):
                        point = dict(env)
                        point[engine.procs_name] = processors
                        point[engine.proc_name] = proc
                        split = dict(zip(fused.fields, fused(point)))
                        for field in FIELDS:
                            unsplit = engine.forms[field].evaluate(point)
                            reference = getattr(
                                walk.per_proc[proc].counts, field
                            )
                            key = (name, field, params, processors, proc)
                            assert split[field] == unsplit, key
                            assert split[field] == reference, key

    def test_banded_forms_use_residue_class_plans(self):
        # The whole point of the PR: SYR2K's wrapped banded nest must
        # actually compile a residue-class plan, not just a loop.
        node = syr2k_variants(24, 4)["syr2k"]
        engine = SymbolicEngine(node)
        fused = engine._fused()
        assert fused is not None
        assert any(plan is not None for plan in fused.plans)

    def test_plan_matches_interpreter_on_synthetic_mod_sums(self):
        # Direct sympoly-level check: a banded-style sum whose body
        # carries Mod/FloorDiv/Pos atoms in the bound variable, over
        # trip counts below and above the plan threshold, for several
        # moduli (incl. 1, where every class collapses).
        q = sym("q")
        P = sym("P")
        n = sym("n")
        body = (
            3 * mod(q, P)
            + floordiv(q, P) * 2
            + pos(q + (-1) * sym("c"))
            + mod(q + 5, 3)
        )
        expr = bounded_sum("q", n, body) + bounded_sum(
            "r", mod(n, P) + 2, sym("r") + 7
        )
        fast = expr.compiled()
        for N in (0, 1, 7, 12, 13, 40, 97):
            for procs in (1, 2, 3, 4, 7):
                for c in (0, 3, 50):
                    env = {"n": N, "P": procs, "c": c}
                    assert fast(env) == expr.evaluate(env), env

    def test_plan_falls_back_on_nonpositive_modulus(self):
        # A runtime modulus <= 0 must raise the checked-atom error from
        # both the interpreter and the compiled/planned path.
        q = sym("q")
        expr = bounded_sum("q", sym("n"), mod(q, sym("P")))
        env = {"n": 64, "P": 0}
        with pytest.raises(SymbolicUnsupported):
            expr.evaluate(env)
        with pytest.raises(SymbolicUnsupported):
            expr.evaluate_fast(env)

    def test_strength_reduced_sources_pass_kernel_sanitizer(self):
        # KERN001/KERN002 stay clean on the emitted fused sources even
        # after induction-variable strength reduction leaves counted
        # loops whose target the body no longer reads.
        from repro.analysis.kernels import sanitize_generated_source

        for kind, variants in (
            ("syr2k", syr2k_variants(24, 4)),
            ("gemm", gemm_variants(16)),
        ):
            for name, node in variants.items():
                engine = SymbolicEngine(node)
                fused = engine._fused()
                assert fused is not None, name
                diagnostics = sanitize_generated_source(
                    fused.source, artifact="form:fused", program=name
                )
                assert diagnostics == [], (name, diagnostics)
