"""Tests for the Jacobi stencil workload and the vectorization driver."""

import numpy as np
import pytest

from repro.blas import jacobi_program, jacobi_reference
from repro.codegen import generate_spmd
from repro.core import access_normalize, is_identity, is_interchange
from repro.distributions import wrapped_column, wrapped_row
from repro.ir import allocate_arrays, execute, make_program, validate_program
from repro.numa import simulate
from repro.vector import stride_report, vector_priority, vectorize


class TestJacobi:
    def test_program_validates(self):
        validate_program(jacobi_program(16))

    def test_reference_semantics(self):
        program = jacobi_program(12)
        arrays = allocate_arrays(program, seed=80)
        expected = jacobi_reference(arrays)
        execute(program, arrays)
        np.testing.assert_allclose(arrays["B"], expected, atol=1e-12)

    def test_row_distribution_keeps_loop_order(self):
        result = access_normalize(jacobi_program(16, wrapped_row()))
        assert is_identity(result.matrix)

    def test_column_distribution_interchanges(self):
        result = access_normalize(jacobi_program(16, wrapped_column()))
        assert is_interchange(result.matrix)

    def test_no_dependences(self):
        result = access_normalize(jacobi_program(16))
        assert result.dependence_columns.ncols == 0

    def test_parallel_execution_both_distributions(self):
        for distribution in (wrapped_row(), wrapped_column()):
            program = jacobi_program(14, distribution)
            node = generate_spmd(
                access_normalize(program).transformed, block_transfers=False
            )
            arrays = allocate_arrays(program, seed=81)
            expected = jacobi_reference(arrays)
            simulate(node, processors=3, arrays=arrays, mode="execute")
            np.testing.assert_allclose(arrays["B"], expected, atol=1e-12)

    def test_matched_distribution_is_mostly_local(self):
        program = jacobi_program(32, wrapped_column())
        matched = generate_spmd(
            access_normalize(program).transformed, block_transfers=False
        )
        mismatched = generate_spmd(program, block_transfers=False)
        good = simulate(matched, processors=4)
        bad = simulate(mismatched, processors=4)
        good_fraction = good.totals.local / (
            good.totals.local + good.totals.remote
        )
        bad_fraction = bad.totals.local / (bad.totals.local + bad.totals.remote)
        assert good_fraction > 2 * bad_fraction
        assert good.total_time_us < bad.total_time_us


class TestVectorizeDriver:
    def figure1(self):
        return make_program(
            loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
            body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
            arrays=[("B", "N1", "b"), ("A", "N1", "N1+b+N2")],
            params={"N1": 12, "N2": 12, "b": 3},
            name="fig1",
        )

    def test_vector_priority_lists_slow_dims(self):
        program = self.figure1()
        priority = vector_priority(program.nest)
        # Dimension-1 subscripts only: j-i (twice) before j+k (once).
        assert priority == ["j-i", "j+k"]

    def test_vectorize_gives_unit_strides(self):
        program = self.figure1()
        result = vectorize(program)
        report = stride_report(result.transformed)
        assert all(info.stride == 1 for info in report)

    def test_vectorize_without_any_distribution(self):
        # The point of the driver: no distribution info needed at all.
        program = self.figure1()
        assert not program.distributions
        result = vectorize(program)
        assert not is_identity(result.matrix)

    def test_vectorize_preserves_semantics(self):
        from repro.ir import arrays_equal

        program = self.figure1()
        result = vectorize(program)
        base = allocate_arrays(program, seed=82)
        other = {k: v.copy() for k, v in base.items()}
        execute(program, base)
        execute(result.transformed, other)
        assert arrays_equal(base, other)

    def test_vectorize_respects_dependences(self):
        from repro.core import is_legal_transformation

        program = make_program(
            loops=[("i", 0, "N-1"), ("j", 1, "N-1")],
            body=["A[i, j] = A[i, j-1] + 1"],
            arrays=[("A", "N", "N")],
            params={"N": 10},
        )
        result = vectorize(program)
        assert is_legal_transformation(result.matrix, result.dependence_columns)

    def test_kwargs_passthrough(self):
        program = self.figure1()
        result = vectorize(program, new_indices=["x", "y", "z"])
        assert result.transformation.new_indices == ("x", "y", "z")
