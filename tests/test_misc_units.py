"""Unit tests for smaller behaviours across the stack."""

import numpy as np
import pytest

from repro.codegen import generate_spmd, render_node_program
from repro.core import apply_transformation, choose_new_indices
from repro.errors import ParseError, ReproError
from repro.ir import (
    AffineExpr,
    ArrayRef,
    Assign,
    IfThen,
    Loop,
    LoopNest,
    ModEq,
    allocate_arrays,
    make_program,
    parse_assignment,
    render_nest,
    run_fresh,
)
from repro.linalg import IntegerLattice, Matrix
from repro.numa import simulate


class TestErrorTypes:
    def test_parse_error_location(self):
        error = ParseError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7

    def test_hierarchy(self):
        from repro.errors import (
            CodegenError,
            DependenceError,
            IllegalTransformationError,
            LinalgError,
            NotInvertibleError,
        )

        for cls in (
            CodegenError,
            DependenceError,
            IllegalTransformationError,
            LinalgError,
            NotInvertibleError,
        ):
            assert issubclass(cls, ReproError)


class TestLoopRendering:
    def test_step_and_align_comment(self):
        loop = Loop.make("u", 6, 18, step=2, align="0")
        text = str(loop)
        assert "step 2" in text
        assert "mod 2" in text

    def test_max_min_rendering(self):
        loop = Loop.make("k", ["i-2", "0"], ["i+2", "N-1"])
        text = str(loop)
        assert "max(" in text and "min(" in text

    def test_nest_renders_disjunctive_guard(self):
        cond1 = ModEq(AffineExpr.var("i"), AffineExpr.constant(2), AffineExpr.constant(0))
        cond2 = ModEq(AffineExpr.var("i"), AffineExpr.constant(3), AffineExpr.constant(0))
        stmt = IfThen(
            (cond1, cond2), parse_assignment("A[i] = 1", ["i"]), disjunctive=True
        )
        nest = LoopNest((Loop.make("i", 0, 5),), (stmt,))
        assert " or " in render_nest(nest)

    def test_prologue_rendered(self):
        from repro.ir import BlockRead

        loop = Loop.make("v", 0, 5, prologue=[BlockRead("A", (None, AffineExpr.var("v")))])
        nest = LoopNest((loop,), (parse_assignment("B[v] = 1", ["v"]),))
        text = render_nest(nest)
        assert "read A[*, v]" in text


class TestNameChoice:
    def test_preferred_names(self):
        assert choose_new_indices(3, []) == ("u", "v", "w")

    def test_collision_avoidance(self):
        names = choose_new_indices(3, ["u", "w"])
        assert "u" not in names and "w" not in names

    def test_fallback_numbering(self):
        names = choose_new_indices(10, [])
        assert len(set(names)) == 10
        assert any(name.startswith("u") and name[1:].isdigit() for name in names)


class TestLatticeExtras:
    def test_coordinates_roundtrip(self):
        lattice = IntegerLattice(Matrix([[2, 4], [1, 5]]))
        point = [2 * 3 + 4 * 2, 3 + 5 * 2]
        coords = lattice.coordinates(point)
        rebuilt = lattice.hermite.apply([int(c) for c in coords])
        assert [int(v) for v in rebuilt] == point

    def test_strides_list(self):
        lattice = IntegerLattice(Matrix([[2, 4], [1, 5]]))
        assert lattice.strides() == [2, 3]

    def test_determinant(self):
        assert IntegerLattice(Matrix([[2, 0], [0, 3]])).determinant == 6


class TestNonUnimodularNodeProgram:
    """The Section 3 scaling example distributed across processors."""

    def make_node(self):
        program = make_program(
            loops=[("i", 1, 9), ("j", 1, 9)],
            body=["A[2i + 4j, i + 5j] = i + j"],
            arrays=[("A", 70, 70)],
            name="scaled",
        )
        result = apply_transformation(program.nest, Matrix([[2, 4], [1, 5]]))
        return program, program.with_nest(result.nest)

    def test_render_strided_outer(self):
        _, transformed = self.make_node()
        node = generate_spmd(transformed, block_transfers=False)
        text = render_node_program(node)
        assert "lcm(2, P)" in text or "step" in text

    def test_simulated_execution_correct(self):
        program, transformed = self.make_node()
        node = generate_spmd(transformed, block_transfers=False)
        arrays = allocate_arrays(program, init="zeros")
        expected = {k: v.copy() for k, v in arrays.items()}
        from repro.ir import execute

        execute(program, expected)
        for processors in (1, 3, 4):
            trial = {k: np.zeros_like(v) for k, v in arrays.items()}
            simulate(node, processors=processors, arrays=trial, mode="execute")
            np.testing.assert_allclose(trial["A"], expected["A"])

    def test_blocked_schedule_on_strided_outer(self):
        program, transformed = self.make_node()
        node = generate_spmd(
            transformed, schedule="blocked", block_transfers=False
        )
        outcome = simulate(node, processors=3)
        assert outcome.totals.iterations == 81


class TestInterpExtras:
    def test_run_fresh(self):
        program = make_program(
            loops=[("i", 0, 3)], body=["A[i] = 2*i"], arrays=[("A", 4)]
        )
        arrays = run_fresh(program)
        np.testing.assert_allclose(arrays["A"], [0, 2, 4, 6])

    def test_arrayref_make_coercions(self):
        ref = ArrayRef.make("A", "i+1", 3, AffineExpr.var("j"))
        assert str(ref) == "A[i+1, 3, j]"
        assert ref.rank == 3

    def test_assign_str(self):
        stmt = parse_assignment("A[i] = A[i] * 2 + 1", ["i"])
        assert isinstance(stmt, Assign)
        assert str(stmt) == "A[i] = A[i] * 2 + 1"


class TestMatrixExtras:
    def test_submatrix(self):
        m = Matrix([[1, 2, 3], [4, 5, 6], [7, 8, 9]])
        assert m.submatrix(slice(0, 2), slice(1, 3)) == Matrix([[2, 3], [5, 6]])

    def test_from_rows_alias(self):
        assert Matrix.from_rows([[1, 2]]) == Matrix([[1, 2]])

    def test_iter(self):
        rows = list(Matrix([[1, 2], [3, 4]]))
        assert rows[1] == (3, 4)

    def test_from_cols_ragged(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            Matrix.from_cols([[1, 2], [3]])


class TestAffineExtras:
    def test_from_coeffs(self):
        expr = AffineExpr.from_coeffs(["i", "j"], [2, -1], 5)
        assert expr.evaluate({"i": 1, "j": 1}) == 6

    def test_repr(self):
        assert "AffineExpr" in repr(AffineExpr.parse("i+1"))

    def test_radd_rsub_rmul(self):
        expr = 1 + AffineExpr.var("i")
        assert expr.const == 1
        expr = 5 - AffineExpr.var("i")
        assert expr.coeff("i") == -1
        expr = 3 * AffineExpr.var("i")
        assert expr.coeff("i") == 3
