"""Property tests for the fuzz generator, spec layer and shrinker.

The generator's contract is that *every* seed yields a valid, in-bounds,
interpretable program whose statements survive a printer/parser round
trip — these are the invariants the differential oracle leans on, so they
get their own hypothesis suite independent of any oracle run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fuzz import ProgramSpec, generate_spec, refit_extents, shrink_spec
from repro.fuzz.spec import MAX_ITERATIONS, check_program_bounds
from repro.ir import make_nest
from repro.ir.builder import parse_assignment
from repro.ir.interp import run_fresh
from repro.ir.printer import render_nest
from repro.ir.validate import validate_program

SEEDS = st.integers(0, 10_000)


class TestGeneratorInvariants:
    @given(SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_generated_program_is_valid_and_in_bounds(self, seed):
        spec = generate_spec(seed)
        program = spec.build(check_bounds=False)
        validate_program(program)
        check_program_bounds(program)  # raises SpecError on violation

    @given(SEEDS)
    @settings(max_examples=25, deadline=None)
    def test_generated_program_is_interpretable(self, seed):
        spec = generate_spec(seed)
        program = spec.build()
        arrays = run_fresh(program, seed=7)
        assert set(arrays) == {name for name, _ in spec.arrays}

    @given(SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_statements_round_trip_through_printer_and_parser(self, seed):
        spec = generate_spec(seed)
        indices = list(spec.indices)
        for text in spec.statements:
            statement = parse_assignment(text, indices)
            assert str(parse_assignment(str(statement), indices)) == str(statement)

    @given(SEEDS)
    @settings(max_examples=60, deadline=None)
    def test_nest_renders(self, seed):
        spec = generate_spec(seed)
        nest = make_nest(
            [tuple(loop) for loop in spec.loops], list(spec.statements)
        )
        rendered = render_nest(nest)
        for index, _, _, _ in spec.loops:
            assert f"for {index} " in rendered

    @given(SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_generation_is_deterministic(self, seed):
        assert generate_spec(seed) == generate_spec(seed)

    @given(SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_spec_json_round_trip(self, seed):
        spec = generate_spec(seed)
        assert ProgramSpec.from_json(spec.to_json()) == spec

    @given(SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_iteration_budget_respected(self, seed):
        spec = generate_spec(seed)
        params = dict(spec.params)
        nest = make_nest(
            [tuple(loop) for loop in spec.loops], list(spec.statements)
        )
        count = sum(1 for _ in nest.iterate(params))
        assert 0 < count <= MAX_ITERATIONS


class TestShrinker:
    def _example_spec(self):
        return ProgramSpec(
            name="shrink-me",
            loops=(("i", "0", "N-1", 1), ("j", "1", "N-1", 1)),
            statements=(
                "A[i, j] = A[i, j] + B[j, i]",
                "C[i] = C[i] + A[i, j] * 2",
                "B[i, j] = B[i, j] + 1",
            ),
            arrays=(("A", (6, 6)), ("B", (6, 6)), ("C", (6,))),
            params=(("N", 6),),
        )

    def test_shrinker_minimizes_under_synthetic_predicate(self):
        spec = self._example_spec()

        def failing(candidate):
            # Synthetic "bug": any program still containing a B load/store.
            return any("B[" in text for text in candidate.statements)

        assert failing(spec)
        shrunk = shrink_spec(spec, failing)
        assert failing(shrunk)
        # Statements not needed to trigger the predicate are gone, and the
        # arrays they referenced went with them.
        assert len(shrunk.statements) == 1
        assert all(name != "C" for name, _ in shrunk.arrays)
        shrunk.build()  # the shrunk spec is still a valid program

    def test_shrinker_shrinks_parameters(self):
        spec = self._example_spec()
        shrunk = shrink_spec(spec, lambda candidate: True)
        assert dict(shrunk.params)["N"] == 2
        shrunk.build()

    def test_shrinker_never_returns_passing_spec(self):
        spec = self._example_spec()

        def failing(candidate):
            return len(candidate.statements) >= 2

        shrunk = shrink_spec(spec, failing)
        assert failing(shrunk)

    def test_refit_extents_drops_unused_arrays(self):
        spec = self._example_spec().with_(
            statements=("A[i, j] = A[i, j] + 1",)
        )
        refit = refit_extents(spec)
        assert refit is not None
        assert [name for name, _ in refit.arrays] == ["A"]
        refit.build()

    def test_refit_extents_rejects_negative_subscripts(self):
        spec = self._example_spec().with_(
            statements=("A[i - 5, j] = A[i - 5, j] + 1",)
        )
        assert refit_extents(spec) is None


class TestOracleOnGenerated:
    @pytest.mark.parametrize("seed", [11, 202, 3003])
    def test_sampled_seeds_pass_the_oracle(self, seed):
        from repro.fuzz import check_spec

        outcome = check_spec(generate_spec(seed))
        assert outcome.ok, (
            f"seed {seed}: {outcome.status} at {outcome.stage}: {outcome.detail}"
        )
