"""ABL7 — extensions beyond the paper: block-transfer software caching,
tile-size sweep, and cache-aware padding.

These ablate the design choices DESIGN.md calls out as extension points:
(a) re-fetching a block already held locally is wasted communication —
per-processor software caching hoists it; (b) tiling the distributed loop
(Section 7's general mechanism) trades load balance against locality;
(c) ordering free padding rows by innermost stride (Section 6's future
work) changes cache behaviour without touching legality.
"""

from repro.bench import figure_machine, format_table
from repro.blas import gemm_program
from repro.codegen import generate_spmd, generate_tiled_spmd
from repro.core import access_normalize, innermost_stride_score
from repro.distributions import wrapped_column
from repro.ir import make_program
from repro.numa import simulate


def test_block_transfer_caching(benchmark, show):
    """Software caching of fetched blocks (communication hoisting)."""
    n, processors = 96, 8
    node = generate_spmd(access_normalize(gemm_program(n)).transformed)
    machine = figure_machine()

    def run():
        plain = simulate(node, processors=processors, machine=machine)
        cached = simulate(
            node, processors=processors, machine=machine, block_cache=True
        )
        return plain, cached

    plain, cached = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("plain", plain.totals.block_transfers, f"{plain.total_time_us:,.0f}"),
        ("cached", cached.totals.block_transfers, f"{cached.total_time_us:,.0f}"),
    ]
    show("ABL7a: block-transfer software cache (GEMM N=96, P=8)",
         format_table(["variant", "transfers", "time (us)"], rows))
    # Each processor re-fetched every non-owned column once per owned
    # column; caching collapses that to once per processor.
    assert plain.totals.block_transfers == cached.totals.block_transfers * (
        n // processors
    )
    assert cached.total_time_us < plain.total_time_us


def test_tile_size_sweep(benchmark, show):
    """Tiling the distributed loop: bigger tiles, fewer-but-lumpier units."""
    n, processors = 96, 8
    program = access_normalize(gemm_program(n)).transformed
    machine = figure_machine()
    sizes = (1, 2, 4, 8, 12, 24)

    def run():
        results = {}
        for size in sizes:
            node = generate_tiled_spmd(program, tile_size=size)
            results[size] = simulate(
                node, processors=processors, machine=machine
            ).total_time_us
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [(size, f"{time:,.0f}") for size, time in results.items()]
    show("ABL7b: tile-size sweep (GEMM N=96, P=8, wrapped tiles)",
         format_table(["tile", "time (us)"], rows)
         + "\n(element-wrapped arrays punish tiles > 1; aligning the tile"
         + "\n size with a block-cyclic distribution restores locality --"
         + "\n see tests/test_blockcyclic.py::TestTileBlockAlignment)")
    # Oversized tiles (N/P per tile = 1 tile per processor at size 12)
    # must not beat small tiles here: work per outer iteration is uniform,
    # so fine-grained dealing is never worse.
    assert results[1] <= results[24] * 1.05
    # All tile sizes execute the same work.
    node = generate_tiled_spmd(program, tile_size=5)
    assert simulate(node, processors=3).totals.iterations == n ** 3


def test_cache_aware_padding(benchmark, show):
    """Section 6 future work: free rows ordered for innermost stride.

    The transformation's leading row is pinned by the data access matrix;
    the two completing rows are free.  Putting the ``j`` direction
    innermost makes the big 3-D read unit-stride (column-major), putting
    ``k`` innermost makes it stride N — the optimizer must pick the former.
    """
    from repro.core import apply_transformation, optimize_padding_order
    from repro.linalg import Matrix

    n = 64
    program = make_program(
        loops=[("i", 0, "N-1"), ("j", 0, "N-1"), ("k", 0, "N-1")],
        body=["B[i+j+k] = A[j, k] + 1"],
        arrays=[("B", "3*N"), ("A", "N", "N")],
        params={"N": n},
        name="pad3",
    )
    fixed = Matrix([[1, 1, 1], [0, 1, 0], [0, 0, 1]])
    deps = Matrix.zeros(3, 0)

    def run():
        default_score = innermost_stride_score(
            program, apply_transformation(program.nest, fixed).nest
        )
        optimized = optimize_padding_order(program, fixed, 1, deps)
        cache_score = innermost_stride_score(
            program, apply_transformation(program.nest, optimized).nest
        )
        return default_score, cache_score, optimized

    score_default, score_cache, optimized = benchmark(run)
    show(
        "ABL7c: padding-order innermost strides (B[i+j+k] = A[j,k])",
        format_table(
            ["policy", "total |stride|"],
            [("default", score_default), ("cache-aware", score_cache)],
        ),
    )
    assert score_cache < score_default
    # The optimizer moved the j-direction row innermost.
    assert optimized.row_at(2) == (0, 1, 0)
