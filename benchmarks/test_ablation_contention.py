"""ABL1 — the contention argument of Sections 1 and 8.

Agarwal's analysis says long messages can *increase* network latency; the
paper argues that on real machines the startup-amortization benefit
dominates.  This ablation sweeps the contention coefficient and shows that
``gemmB`` keeps beating ``gemmT`` even under heavy contention — i.e. block
transfers remain the right call, reproducing the paper's Section 8 claim.
"""

from repro.bench import format_table
from repro.numa import butterfly_gp1000
from repro.numa.model import gemm_model

COEFFICIENTS = (0.0, 0.05, 0.1, 0.2, 0.4)


def sweep(n=400, processors=28):
    rows = []
    for coefficient in COEFFICIENTS:
        machine = butterfly_gp1000(contention_coefficient=coefficient)
        sequential = gemm_model(n, 1, "gemmB", machine).time_us
        point_t = gemm_model(n, processors, "gemmT", machine)
        point_b = gemm_model(n, processors, "gemmB", machine)
        rows.append(
            (
                coefficient,
                f"{sequential / point_t.time_us:.2f}",
                f"{sequential / point_b.time_us:.2f}",
                f"{point_t.time_us / point_b.time_us:.2f}x",
            )
        )
    return rows


def test_block_transfers_survive_contention(benchmark, show):
    rows = benchmark(sweep)
    show(
        "ABL1: contention sweep (GEMM, N=400, P=28)",
        format_table(["coeff", "gemmT", "gemmB", "B advantage"], rows),
    )
    # Block transfers must win at every contention level tested...
    for _, speed_t, speed_b, _ in rows:
        assert float(speed_b) > float(speed_t)
    # ...and contention must actually hurt (monotone decreasing speedups).
    speed_bs = [float(row[2]) for row in rows]
    assert speed_bs == sorted(speed_bs, reverse=True)


def test_contention_hits_remote_heavy_code_harder(benchmark):
    """The naive variant (most remote traffic) degrades fastest."""

    def run():
        quiet = butterfly_gp1000()
        noisy = butterfly_gp1000(contention_coefficient=0.2)
        degradation = {}
        for variant in ("gemm", "gemmT", "gemmB"):
            base = gemm_model(400, 28, variant, quiet).time_us
            loud = gemm_model(400, 28, variant, noisy).time_us
            degradation[variant] = loud / base
        return degradation

    degradation = benchmark(run)
    assert degradation["gemm"] > degradation["gemmT"] > degradation["gemmB"]
