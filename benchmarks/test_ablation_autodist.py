"""ABL5 — automatic data distribution (Section 9 future work).

The paper speculates that access normalization could run "in reverse" to
pick data distributions, with load balance being the hard part.  The
searcher in ``repro.core.autodist`` evaluates every wrapped/blocked
assignment through the full normalize -> codegen -> simulate pipeline,
which prices locality, block transfers and load balance together.
"""

from repro.bench import format_table
from repro.blas import gemm_program
from repro.core.autodist import search_distributions
from repro.distributions import Wrapped
from repro.numa import butterfly_gp1000


def test_autodist_gemm(benchmark, show):
    program = gemm_program(24)
    outcome = benchmark.pedantic(
        search_distributions,
        args=(program,),
        kwargs={"processors": 8, "machine": butterfly_gp1000()},
        rounds=1,
        iterations=1,
    )
    rows = [
        (rank + 1, candidate.describe(), f"{candidate.time_us:,.0f}")
        for rank, candidate in enumerate(outcome.ranking[:6])
    ]
    show("ABL5: distribution search for GEMM (N=24, P=8)",
         format_table(["rank", "distribution", "time (us)"], rows))

    # The paper's assumed distribution (all wrapped columns) must tie the
    # winner; its row-wise mirror has the same cost by symmetry.
    best_time = outcome.best.time_us
    all_wrapped_col = next(
        c for c in outcome.ranking
        if all(isinstance(d, Wrapped) and d.dim == 1
               for d in c.distributions.values())
    )
    assert abs(all_wrapped_col.time_us - best_time) / best_time < 1e-9
    # And the spread matters: the worst choice must be clearly worse.
    assert outcome.ranking[-1].time_us > 1.2 * best_time
