"""ABL6 — machine-model sensitivity.

Access normalization targets NUMA machines; its benefit should *grow* with
memory-access non-uniformity and *vanish* on a uniform-memory machine.
This ablation runs the same three GEMM compilations on the Butterfly
GP-1000, the Intel iPSC/i860 (much larger startup costs — Section 1's
motivating numbers) and a uniform-memory control.
"""

from repro.bench import format_table
from repro.numa import butterfly_gp1000, ipsc860, uniform_memory
from repro.numa.model import gemm_model

MACHINES = (butterfly_gp1000, ipsc860, uniform_memory)


def sweep(n=400, processors=16):
    rows = []
    ratios = {}
    for factory in MACHINES:
        machine = factory()
        sequential = gemm_model(n, 1, "gemmB", machine).time_us
        speeds = {
            variant: sequential / gemm_model(n, processors, variant, machine).time_us
            for variant in ("gemm", "gemmT", "gemmB")
        }
        ratios[machine.name] = speeds
        rows.append(
            (
                machine.name,
                f"{speeds['gemm']:.2f}",
                f"{speeds['gemmT']:.2f}",
                f"{speeds['gemmB']:.2f}",
                f"{speeds['gemmB'] / speeds['gemm']:.2f}x",
            )
        )
    return rows, ratios


def test_benefit_tracks_nonuniformity(benchmark, show):
    rows, ratios = benchmark(sweep)
    show(
        "ABL6: machine sensitivity (GEMM N=400, P=16)",
        format_table(
            ["machine", "gemm", "gemmT", "gemmB", "normalization win"], rows
        ),
    )
    butterfly = ratios["BBN Butterfly GP-1000"]
    ipsc = ratios["Intel iPSC/i860"]
    uniform = ratios["uniform memory"]
    # On a UMA control the transformation must be (near) irrelevant.
    assert abs(uniform["gemmB"] - uniform["gemm"]) / uniform["gemm"] < 0.25
    # The more non-uniform the machine, the bigger the win.
    win_butterfly = butterfly["gemmB"] / butterfly["gemm"]
    win_ipsc = ipsc["gemmB"] / ipsc["gemm"]
    win_uniform = uniform["gemmB"] / uniform["gemm"]
    assert win_ipsc > win_butterfly > win_uniform


def test_ipsc_block_transfers_essential(benchmark):
    """On the iPSC the startup-dominated remote path makes gemmT nearly
    useless while gemmB still scales — block transfers are not optional on
    message-passing machines."""

    def run(n=400, processors=16):
        machine = ipsc860()
        sequential = gemm_model(n, 1, "gemmB", machine).time_us
        speed_t = sequential / gemm_model(n, processors, "gemmT", machine).time_us
        speed_b = sequential / gemm_model(n, processors, "gemmB", machine).time_us
        return speed_t, speed_b

    speed_t, speed_b = benchmark(run)
    assert speed_b > 3 * speed_t
