"""EX1/EX2 — the paper's worked transformations, regenerated end to end.

Benchmarks the compiler pass itself (access normalization is meant to run
inside a compiler, so its own speed matters) and prints the transformed
programs next to the paper's Figures 1(c)/1(d) and the Section 3 example.
"""

from repro.blas import PAPER_PRIORITY, gemm_program, syr2k_program
from repro.codegen import generate_spmd, render_node_program
from repro.core import access_normalize, apply_transformation
from repro.distributions import wrapped_column
from repro.ir import make_program, render_nest
from repro.linalg import Matrix


def figure1_program():
    return make_program(
        loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
        body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
        arrays=[("B", "N1", "b"), ("A", "N1", "N1+b+N2")],
        distributions={"A": wrapped_column(), "B": wrapped_column()},
        params={"N1": 400, "N2": 400, "b": 40},
        name="figure1",
    )


def test_fig1_transformation(benchmark, show):
    result = benchmark(access_normalize, figure1_program())
    assert result.matrix == Matrix([[-1, 1, 0], [0, 1, 1], [1, 0, 0]])
    node = generate_spmd(result.transformed)
    show("Figure 1(c)/(d): transformed + node program",
         render_nest(result.transformed.nest) + "\n---\n" + render_node_program(node))
    text = render_node_program(node)
    assert "read A[*, v]" in text
    assert "B[w, u] = B[w, u] + A[w, v]" in text


def test_section3_scaling_example(benchmark, show):
    program = make_program(
        loops=[("i", 1, 3), ("j", 1, 3)],
        body=["A[2i + 4j, i + 5j] = j"],
        arrays=[("A", 20, 20)],
        name="section3",
    )
    result = benchmark(
        apply_transformation, program.nest, Matrix([[2, 4], [1, 5]])
    )
    show("Section 3 non-unimodular example", render_nest(result.nest))
    outer, inner = result.nest.loops
    assert outer.step == 2 and inner.step == 3
    assert list(outer.iter_values({})) == [6, 8, 10, 12, 14, 16, 18]


def test_compiler_pass_speed_gemm(benchmark):
    """The whole pass (analysis + derivation + restructuring) on GEMM."""
    result = benchmark(access_normalize, gemm_program(400))
    assert result.matrix == Matrix([[0, 1, 0], [0, 0, 1], [1, 0, 0]])


def test_compiler_pass_speed_syr2k(benchmark):
    """The whole pass on the 5-subscript banded SYR2K."""
    result = benchmark(
        access_normalize, syr2k_program(400, 48), priority=PAPER_PRIORITY
    )
    assert result.matrix == Matrix([[-1, 1, 0], [0, -1, 1], [0, 0, 1]])
