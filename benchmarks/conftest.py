"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's artifacts and prints the
reproduced rows/series (run with ``-s`` to see them live; pytest captures
them otherwise).  ``pytest benchmarks/ --benchmark-only`` runs everything.
"""

import sys

import pytest


@pytest.fixture
def show():
    """Print a titled block so reproduced tables are easy to find in output."""

    def _show(title: str, body: str) -> None:
        sys.stdout.write(f"\n=== {title} ===\n{body}\n")

    return _show
