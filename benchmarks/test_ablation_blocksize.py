"""ABL3 — the startup-amortization argument of Section 1.

On the iPSC/i860, communication startup is 70 us but a double moves in
1 us once the pipeline is up; on the Butterfly, startup is 8 us against a
6.6 us remote access.  This ablation regenerates the breakeven analysis:
from how many elements onward does one block transfer beat per-element
remote access?
"""

from repro.bench import format_table
from repro.numa import butterfly_gp1000, ipsc860

SIZES = (1, 2, 4, 8, 16, 64, 256, 1024)


def breakeven_rows(machine):
    rows = []
    for elements in SIZES:
        block = machine.block_transfer_us(elements * 8)
        scalar = elements * machine.remote_access_us
        rows.append((elements, f"{block:.1f}", f"{scalar:.1f}",
                     "block" if block < scalar else "scalar"))
    return rows


def test_butterfly_breakeven(benchmark, show):
    machine = butterfly_gp1000()
    rows = benchmark(breakeven_rows, machine)
    show("ABL3: block vs scalar remote (Butterfly GP-1000)",
         format_table(["elements", "block us", "scalar us", "winner"], rows))
    # Paper constants: breakeven just under 2 elements.
    assert 1.0 < machine.block_breakeven_elements(8) < 2.0
    assert rows[0][3] == "scalar"   # a single element: scalar wins
    assert rows[2][3] == "block"    # four elements: block wins


def test_ipsc860_breakeven(benchmark, show):
    machine = ipsc860()
    rows = benchmark(breakeven_rows, machine)
    show("ABL3: block vs scalar remote (iPSC/i860)",
         format_table(["elements", "block us", "scalar us", "winner"], rows))
    # With a 70 us startup equal to one remote message, block transfers of
    # two or more doubles already win.
    assert rows[0][3] == "scalar"
    assert rows[1][3] == "block"


def test_breakeven_drives_gemm_gap(benchmark):
    """The gemmB-over-gemmT advantage is exactly the per-column saving."""
    from repro.numa.model import gemm_model

    def run(n=400, processors=28):
        machine = butterfly_gp1000()
        point_t = gemm_model(n, processors, "gemmT", machine)
        point_b = gemm_model(n, processors, "gemmB", machine)
        saving = point_t.time_us - point_b.time_us
        columns = point_b.counts.block_transfers
        per_column = (
            n * machine.remote_access_us
            - machine.block_transfer_us(n * 8)
            + n * machine.local_access_us * 0  # consumption stays local
        )
        # gemmT pays remote for each element but no local for them; gemmB
        # pays the transfer plus local consumption.
        per_column -= n * machine.local_access_us
        return saving, columns * per_column

    saving, predicted = benchmark(run)
    assert abs(saving - predicted) / predicted < 1e-9
