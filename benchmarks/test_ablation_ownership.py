"""ABL2 — Section 2.1's claim: the ownership rule alone generates
inefficient code ("all processors execute all iterations looking for work
to do") when loop structure does not match the data distribution.

Compares three compilations of GEMM: the ownership-rule baseline, naive
outer-loop distribution, and access-normalized SPMD code.
"""

from repro.bench import figure_machine, format_table
from repro.blas import gemm_program
from repro.codegen import generate_ownership, generate_spmd
from repro.core import access_normalize
from repro.numa import simulate


def sweep(n=64, procs=(1, 4, 8, 16)):
    program = gemm_program(n)
    nodes = {
        "ownership": generate_ownership(program),
        "naive": generate_spmd(program, block_transfers=False),
        "normalized": generate_spmd(access_normalize(program).transformed),
    }
    machine = figure_machine()
    sequential = simulate(
        nodes["normalized"], processors=1, machine=machine
    ).total_time_us
    rows = []
    speeds = {}
    for processors in procs:
        row = [processors]
        for name, node in nodes.items():
            result = simulate(node, processors=processors, machine=machine)
            speed = sequential / result.total_time_us
            speeds.setdefault(name, []).append(speed)
            row.append(f"{speed:.2f}")
        rows.append(row)
    return rows, speeds


def test_ownership_rule_inefficiency(benchmark, show):
    rows, speeds = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        "ABL2: ownership rule vs restructuring (GEMM N=64)",
        format_table(["P", "ownership", "naive", "normalized"], rows),
    )
    # Normalized code dominates both baselines at scale.
    assert speeds["normalized"][-1] > speeds["naive"][-1]
    assert speeds["normalized"][-1] > speeds["ownership"][-1]
    # The ownership rule pays guard sweeps on every processor: it must not
    # scale anywhere near linearly.
    assert speeds["ownership"][-1] < 0.6 * speeds["normalized"][-1]


def test_ownership_guard_counts(benchmark):
    """Every processor evaluates every iteration's guard."""
    program = gemm_program(24)
    node = generate_ownership(program)
    result = benchmark.pedantic(
        simulate, args=(node,), kwargs={"processors": 4},
        rounds=1, iterations=1,
    )
    assert result.totals.guards == 4 * 24 ** 3
    assert result.totals.statements == 24 ** 3
