"""FIG5 — Figure 5 of the paper: banded SYR2K speedup on the GP-1000.

Regenerates the three curves (``syr2k``, ``syr2kT``, ``syr2kB``) with the
event-exact simulator at paper scale (N=400; band width 48 gives every one
of 28 processors outer-loop work).

Expected shape (paper): many non-local accesses remain after
normalization, so block transfers matter much more than in GEMM —
``syr2kB`` clearly dominates ``syr2kT``; the untransformed ``syr2k`` stays
low.
"""

from repro.bench import PAPER_PROCS, fig5_series, render_chart, speedup_table


def test_fig5_paper_scale(benchmark, show):
    procs, series = benchmark.pedantic(
        fig5_series, args=(400, 48, PAPER_PROCS), rounds=1, iterations=1
    )
    show("Figure 5: banded SYR2K speedups (N=400, b=48)",
         speedup_table(procs, series) + "\n\n"
         + render_chart(procs, series, title="speedup vs processors"))
    last = {name: values[-1] for name, values in series.items()}
    # Shape assertions: block transfers are the difference-maker here.
    assert last["syr2kB"] > last["syr2kT"]
    assert last["syr2kB"] > 1.6 * last["syr2kT"]
    assert last["syr2kB"] > 8.0
    assert last["syr2k"] < 6.0
    assert series["syr2kB"] == sorted(series["syr2kB"])


def test_fig5_small_scale_ordering(benchmark, show):
    procs = (1, 4, 8, 16)
    procs_out, series = benchmark.pedantic(
        fig5_series, args=(120, 16, procs), rounds=1, iterations=1
    )
    show("Figure 5 (small N=120, b=16)", speedup_table(procs_out, series))
    assert series["syr2kB"][-1] > series["syr2kT"][-1]
