"""FIG4 — Figure 4 of the paper: GEMM speedup on the Butterfly GP-1000.

Regenerates the three curves (``gemm``, ``gemmT``, ``gemmB``) at the
paper's scale (400x400 arrays, P = 1..28) with the exact closed-form model,
and cross-checks one point against the event-exact simulator.

Expected shape (paper): the untransformed ``gemm`` saturates at low
speedup; the normalized variants scale to ~20 at 28 processors with
``gemmB`` above ``gemmT`` by a modest margin (three of four accesses are
already local after normalization, so block transfers add relatively
little here).
"""

import pytest

from repro.bench import (
    PAPER_PROCS,
    fig4_series,
    fig4_series_simulated,
    figure_machine,
    render_chart,
    speedup_table,
)


def test_fig4_model_paper_scale(benchmark, show):
    procs, series = benchmark(fig4_series, 400, PAPER_PROCS)
    show("Figure 4: GEMM speedups (N=400, model)",
         speedup_table(procs, series) + "\n\n"
         + render_chart(procs, series, title="speedup vs processors"))
    last = {name: values[-1] for name, values in series.items()}
    # Shape assertions: ordering and saturation as in the paper.
    assert last["gemmB"] > last["gemmT"] > last["gemm"]
    assert last["gemm"] < 8.0            # naive saturates low
    assert last["gemmT"] > 12.0          # normalized scales
    assert last["gemmB"] > 18.0          # block transfers help a bit more
    # Monotone growth for the normalized variants.
    assert series["gemmB"] == sorted(series["gemmB"])
    assert series["gemmT"] == sorted(series["gemmT"])


def test_fig4_simulated_cross_check(benchmark, show):
    procs = (1, 8, 16, 28)
    procs_out, series = benchmark.pedantic(
        fig4_series_simulated, args=(96, procs), rounds=1, iterations=1
    )
    show("Figure 4 cross-check (N=96, event-exact simulator)",
         speedup_table(procs_out, series))
    assert series["gemmB"][-1] > series["gemmT"][-1] > series["gemm"][-1]


def test_fig4_model_matches_simulator_midscale(benchmark):
    """The model and the simulator must agree exactly at any scale."""
    from repro.bench import gemm_variants
    from repro.numa import simulate
    from repro.numa.model import gemm_model

    machine = figure_machine()
    nodes = gemm_variants(48)

    def run():
        sim = simulate(nodes["gemmB"], processors=12, machine=machine)
        mod = gemm_model(48, 12, "gemmB", machine)
        return sim.total_time_us, mod.time_us

    sim_time, model_time = benchmark(run)
    assert sim_time == pytest.approx(model_time, rel=1e-9)
