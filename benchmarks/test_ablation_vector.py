"""ABL4 — the Section 9 vectorization application.

Access normalization produces constant (indeed unit) stride innermost
accesses, which the paper notes also benefits vector machines like the
CRAY-1/2 where vector loads must have constant stride.
"""

from repro.bench import format_table
from repro.core import access_normalize
from repro.distributions import wrapped_column
from repro.ir import make_program
from repro.vector import VectorCostModel, stride_report, vector_loop_cycles


def figure1_program(n=256, b=16):
    return make_program(
        loops=[("i", 0, "N1-1"), ("j", "i", "i+b-1"), ("k", 0, "N2-1")],
        body=["B[i, j-i] = B[i, j-i] + A[i, j+k]"],
        arrays=[("B", "N1", "b"), ("A", "N1", "N1+b+N2")],
        distributions={"A": wrapped_column(), "B": wrapped_column()},
        params={"N1": n, "N2": n, "b": b},
        name="figure1",
    )


def test_stride_normalization(benchmark, show):
    program = figure1_program()

    def run():
        result = access_normalize(program)
        return stride_report(program), stride_report(result.transformed)

    before, after = benchmark(run)
    rows = [
        (str(info.ref), "write" if info.is_write else "read", info.stride)
        for info in before
    ] + [("--- after ---", "", "")] + [
        (str(info.ref), "write" if info.is_write else "read", info.stride)
        for info in after
    ]
    show("ABL4: innermost strides before/after normalization",
         format_table(["reference", "mode", "stride"], rows))
    assert any(info.stride not in (0, 1) for info in before)
    assert all(info.stride == 1 for info in after)


def test_vector_cycle_improvement(benchmark, show):
    program = figure1_program()
    result = access_normalize(program)
    model = VectorCostModel()

    def run():
        return (
            vector_loop_cycles(program, 64, model=model),
            vector_loop_cycles(result.transformed, 64, model=model),
        )

    before, after = benchmark(run)
    show(
        "ABL4: vector cycles per 64-element sweep",
        format_table(
            ["version", "cycles"],
            [("original", f"{before:.0f}"), ("normalized", f"{after:.0f}")],
        ),
    )
    assert after < before
